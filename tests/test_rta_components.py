"""Direct unit tests for RTA sub-components and the warp executor."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.isa import Compute
from repro.gpu.warp import Warp
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rta.mem_scheduler import RTAMemScheduler
from repro.rta.warp_buffer import WarpBuffer
from repro.sim import Simulator


class TestWarp:
    def make(self, gens):
        warp = Warp(0, gens)
        warp.prime()
        return warp

    def test_live_groups_by_tag(self):
        def thread(tag):
            yield Compute(1, tag)

        warp = self.make([thread(3), thread(5), thread(3)])
        groups = warp.live_groups()
        assert groups == {3: [0, 2], 5: [1]}

    def test_step_advances_only_given_threads(self):
        def thread():
            yield Compute(1, 1)
            yield Compute(1, 2)

        warp = self.make([thread(), thread()])
        warp.step([0], results={})
        groups = warp.live_groups()
        assert groups == {2: [0], 1: [1]}

    def test_alive_tracks_exhaustion(self):
        def thread():
            yield Compute(1, 1)

        warp = self.make([thread()])
        assert warp.alive
        warp.step([0], results={})
        assert not warp.alive

    def test_bad_yield_rejected(self):
        def thread():
            yield "junk"

        warp = Warp(0, [thread()])
        with pytest.raises(SimulationError):
            warp.prime()


class TestWarpBuffer:
    def test_capacity_and_waiters(self):
        sim = Simulator()
        buffer = WarpBuffer(sim, warps=1, warp_size=2)  # 2 slots
        order = []

        def holder(tag, hold):
            yield from buffer.acquire()
            order.append(("in", tag, sim.now))
            yield hold
            buffer.release()

        for tag, hold in (("a", 10), ("b", 10), ("c", 5)):
            sim.spawn(holder(tag, hold))
        sim.run()
        # Two admitted at t=0; "c" waits for the first release at t=10.
        assert order[0][2] == 0 and order[1][2] == 0
        assert order[2] == ("in", "c", 10)
        assert buffer.occupancy.peak == 2

    def test_zero_warps_rejected(self):
        with pytest.raises(ConfigurationError):
            WarpBuffer(Simulator(), warps=0)

    def test_access_accounting(self):
        buffer = WarpBuffer(Simulator(), warps=1)
        buffer.record_access(reads=3, writes=2)
        snap = buffer.snapshot(end=100)
        assert snap["warp_buffer_reads"] == 3
        assert snap["warp_buffer_writes"] == 2


class TestRTAMemScheduler:
    def make(self, reqs_per_cycle=1.0):
        sim = Simulator()
        cfg = GPUConfig()
        hierarchy = MemoryHierarchy(sim, cfg)
        l1 = hierarchy.make_l1(0)
        return RTAMemScheduler(sim, hierarchy, l1, reqs_per_cycle)

    def test_issue_rate_one_per_cycle(self):
        sched = self.make()
        t1 = sched.fetch(0, 0x1000, 64)
        t2 = sched.fetch(0, 0x2000, 64)
        # Second fetch issues one cycle later; both pay full latency.
        assert t2 >= t1 + 1 - 1e-9

    def test_duplicate_inflight_merges(self):
        sched = self.make()
        t1 = sched.fetch(0, 0x1000, 64)
        t2 = sched.fetch(1, 0x1000, 64)
        assert t2 == t1
        assert sched.coalesced == 1
        assert sched.fetches == 1

    def test_refetch_after_completion_hits_cache(self):
        sched = self.make()
        t1 = sched.fetch(0, 0x1000, 64)
        t2 = sched.fetch(t1 + 1, 0x1000, 64)
        # The line is now in L1: far faster than the first round trip.
        assert (t2 - (t1 + 1)) < (t1 - 0) / 2

    def test_faster_scheduler_config(self):
        slow = self.make(reqs_per_cycle=0.5)
        t1 = slow.fetch(0, 0x1000, 64)
        t2 = slow.fetch(0, 0x2000, 64)
        assert t2 >= t1 + 2 - 1e-9  # one request per two cycles

    def test_snapshot_keys(self):
        sched = self.make()
        sched.fetch(0, 0x1000, 64)
        snap = sched.snapshot(end=1000)
        assert snap["node_fetches"] == 1
        assert 0 <= snap["memsched_util"] <= 1
