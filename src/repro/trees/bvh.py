"""Bounding Volume Hierarchies: builders, traversal, two-level structures.

The BVH here plays the role of the acceleration structure the RTA
hardware traverses (Algorithm 3 / Fig. 3): binary inner nodes with
AABBs, primitives (triangles, spheres, or point-AABBs for RTNN) at the
leaves.  ``traverse`` implements the while-while loop and returns both
the functional hit and a visit trace that the timing models replay.

Two-level structures (:class:`TwoLevelBVH`) model the TLAS/BLAS split
used by *RTNN, *WKND_PT and LumiBench in Table III, where crossing from
the top level into an instance costs an R-XFORM µop.
"""

import math
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.aabb import AABB
from repro.geometry.batch import aabbs_soa, spheres_soa, triangles_soa
from repro.geometry.intersect import ray_aabb_intersect
from repro.geometry.ray import Ray
from repro.geometry.sphere import Sphere
from repro.geometry.triangle import Triangle
from repro.geometry.vec import Vec3

_SAH_BINS = 12


class BVHArrays:
    """Struct-of-arrays view of a BVH, materialized once per tree.

    Nodes appear in DFS order (the order :meth:`BVH.nodes` serializes,
    which is also the memory-image layout order), primitives in
    ``_prim_order`` order so ``prim k`` here is the k-th primitive a
    leaf's ``[first_prim, first_prim + prim_count)`` slice touches.
    The numpy columns feed the batch kernels in
    :mod:`repro.geometry.batch`; the plain-list mirrors keep scalar DFS
    loops free of per-element numpy indexing overhead.
    """

    __slots__ = (
        "nodes", "lo", "hi", "left", "right", "first_prim", "prim_count",
        "left_list", "right_list", "first_list", "count_list",
        "prim_ids", "prim_id_list", "prim_kind",
        "centers", "radii", "v0", "v1", "v2",
    )

    def __init__(self, bvh: "BVH"):
        self.nodes = bvh.nodes()
        index_of = {id(node): i for i, node in enumerate(self.nodes)}
        self.lo, self.hi = aabbs_soa([node.bounds for node in self.nodes])
        self.left_list = [-1 if n.is_leaf else index_of[id(n.left)]
                          for n in self.nodes]
        self.right_list = [-1 if n.is_leaf else index_of[id(n.right)]
                           for n in self.nodes]
        self.first_list = [n.first_prim for n in self.nodes]
        self.count_list = [n.prim_count for n in self.nodes]
        self.left = np.array(self.left_list, dtype=np.int32)
        self.right = np.array(self.right_list, dtype=np.int32)
        self.first_prim = np.array(self.first_list, dtype=np.int32)
        self.prim_count = np.array(self.count_list, dtype=np.int32)

        prims = [bvh.primitives[i] for i in bvh._prim_order]
        self.prim_id_list = [p.prim_id for p in prims]
        self.prim_ids = np.array(self.prim_id_list, dtype=np.int64)
        self.centers = self.radii = self.v0 = self.v1 = self.v2 = None
        if all(isinstance(p, Sphere) for p in prims):
            self.prim_kind = "sphere"
            self.centers, self.radii = spheres_soa(prims)
        elif all(isinstance(p, Triangle) for p in prims):
            self.prim_kind = "triangle"
            self.v0, self.v1, self.v2 = triangles_soa(prims)
        else:
            self.prim_kind = None

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_prims(self) -> int:
        return len(self.prim_ids)


class BVHNode:
    """Binary BVH node; leaves hold a slice of the primitive list."""

    __slots__ = ("bounds", "left", "right", "first_prim", "prim_count", "address")

    def __init__(self, bounds: AABB):
        self.bounds = bounds
        self.left: Optional["BVHNode"] = None
        self.right: Optional["BVHNode"] = None
        self.first_prim = 0
        self.prim_count = 0
        self.address = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def children(self) -> List["BVHNode"]:
        return [] if self.is_leaf else [self.left, self.right]

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"BVHNode(leaf, prims={self.prim_count})"
        return "BVHNode(inner)"


class VisitEvent(NamedTuple):
    """One step of a traversal: a node visit plus what was tested there."""

    node: BVHNode
    kind: str          # "inner" | "leaf"
    tests: int         # primitive tests performed at a leaf (1 for inner)
    hit: bool          # did the node/any primitive test pass


class TraversalResult(NamedTuple):
    closest_t: float
    closest_prim: Optional[int]
    all_hits: Tuple[int, ...]
    visits: Tuple[VisitEvent, ...]


class BVH:
    """A BVH over primitives that expose ``bounds()`` and ``prim_id``.

    ``intersector(ray, prim)`` must return ``None`` or an object with a
    ``t`` attribute — the triangle/sphere tests from :mod:`repro.geometry`
    plug straight in.
    """

    def __init__(self, primitives: Sequence, max_leaf_size: int = 2,
                 method: str = "median"):
        if not primitives:
            raise ConfigurationError("cannot build a BVH with no primitives")
        if method not in ("median", "sah"):
            raise ConfigurationError(f"unknown BVH build method {method!r}")
        self.primitives = list(primitives)
        self.max_leaf_size = max_leaf_size
        self._prim_bounds = [p.bounds() for p in self.primitives]
        self._prim_order = list(range(len(self.primitives)))
        self.root = self._build(0, len(self.primitives), method)
        self.node_count = self._count_nodes(self.root)
        self._soa: Optional[BVHArrays] = None
        #: bumped by every mutating operation; derived views (the SoA
        #: arrays, memory images, lowered jobs) key their validity on it.
        self.mutation_epoch = 0
        self._soa_epoch = 0

    # -- construction ---------------------------------------------------------
    def _range_bounds(self, first: int, count: int) -> AABB:
        box = AABB.empty()
        for i in range(first, first + count):
            box = box.union(self._prim_bounds[self._prim_order[i]])
        return box

    def _build(self, first: int, count: int, method: str) -> BVHNode:
        node = BVHNode(self._range_bounds(first, count))
        if count <= self.max_leaf_size:
            node.first_prim, node.prim_count = first, count
            return node
        split = (self._sah_split(first, count, node.bounds)
                 if method == "sah" else self._median_split(first, count))
        if split is None or split in (first, first + count):
            node.first_prim, node.prim_count = first, count
            return node
        node.left = self._build(first, split - first, method)
        node.right = self._build(split, first + count - split, method)
        return node

    def _median_split(self, first: int, count: int) -> int:
        bounds = self._range_bounds(first, count)
        axis = bounds.longest_axis()
        segment = self._prim_order[first:first + count]
        segment.sort(key=lambda i: self._prim_bounds[i].centroid().component(axis))
        self._prim_order[first:first + count] = segment
        return first + count // 2

    def _sah_split(self, first: int, count: int, bounds: AABB) -> Optional[int]:
        """Binned surface-area-heuristic split; falls back to median."""
        axis = bounds.longest_axis()
        lo = bounds.lo.component(axis)
        hi = bounds.hi.component(axis)
        if hi - lo < 1e-12:
            return self._median_split(first, count)
        segment = self._prim_order[first:first + count]
        segment.sort(key=lambda i: self._prim_bounds[i].centroid().component(axis))
        self._prim_order[first:first + count] = segment

        best_cost, best_split = math.inf, None
        leaf_cost = count * bounds.surface_area()
        for k in range(1, _SAH_BINS):
            split = first + (count * k) // _SAH_BINS
            if split in (first, first + count):
                continue
            left = self._range_bounds(first, split - first)
            right = self._range_bounds(split, first + count - split)
            cost = (left.surface_area() * (split - first)
                    + right.surface_area() * (first + count - split))
            if cost < best_cost:
                best_cost, best_split = cost, split
        if best_split is None or best_cost >= leaf_cost:
            return first + count // 2
        return best_split

    def _count_nodes(self, node: BVHNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + self._count_nodes(node.left) + self._count_nodes(node.right)

    # -- online mutation --------------------------------------------------------
    #
    # The mutation paths keep results *exact* while letting quality
    # decay: bounds only ever grow (inserts union the path, deletes and
    # moves leave the old extents in place), so a conservative AABB can
    # cost extra visits but never miss a hit.  ``refit`` restores exact
    # bounds without restructuring; a full rebuild restores quality.

    def _invalidate(self) -> None:
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1
        self._soa = None

    def insert(self, prim) -> int:
        """Online insert: descend by least bound growth, append at a leaf.

        The leaf's primitive slice grows past ``max_leaf_size`` rather
        than splitting — exactly the decay mode per-frame RT pipelines
        accept between rebuilds.  Returns the number of nodes touched
        (the descent path), which the mutation cost model charges.
        """
        bounds = prim.bounds()
        node, path = self.root, []
        while not node.is_leaf:
            path.append(node)
            grow_left = (node.left.bounds.union(bounds).surface_area()
                         - node.left.bounds.surface_area())
            grow_right = (node.right.bounds.union(bounds).surface_area()
                          - node.right.bounds.surface_area())
            node = node.left if grow_left <= grow_right else node.right
        prim_index = len(self.primitives)
        self.primitives.append(prim)
        self._prim_bounds.append(bounds)
        pos = node.first_prim + node.prim_count
        self._prim_order.insert(pos, prim_index)
        node.prim_count += 1
        for other in self.nodes():
            if other.is_leaf and other is not node and other.first_prim >= pos:
                other.first_prim += 1
        for ancestor in path:
            ancestor.bounds = ancestor.bounds.union(bounds)
        node.bounds = node.bounds.union(bounds)
        self._invalidate()
        return len(path) + 1

    def remove(self, prim_id: int) -> int:
        """Online delete: drop the primitive from its leaf's slice.

        The primitive stays in ``primitives`` as an unreachable
        tombstone (slice indexes stay stable); bounds are left loose.
        Returns the number of nodes touched.
        """
        pos = None
        for k, i in enumerate(self._prim_order):
            if self.primitives[i].prim_id == prim_id:
                pos = k
                break
        if pos is None:
            raise KeyError(f"prim_id {prim_id} not live in BVH")
        leaf = None
        for node in self.nodes():
            if node.is_leaf and node.first_prim <= pos < (node.first_prim
                                                          + node.prim_count):
                leaf = node
                break
        self._prim_order.pop(pos)
        leaf.prim_count -= 1
        for other in self.nodes():
            if other.is_leaf and other is not leaf and other.first_prim > pos:
                other.first_prim -= 1
        self._invalidate()
        return 1

    def update(self, prim_id: int, prim) -> int:
        """Online update: replace a live primitive in place.

        The slot keeps its position in the leaf; path bounds are grown
        to cover the new extent while the old extent stays covered
        (conservative, so results remain exact until the next refit).
        """
        pos = None
        for k, i in enumerate(self._prim_order):
            if self.primitives[i].prim_id == prim_id:
                pos, prim_index = k, i
                break
        if pos is None:
            raise KeyError(f"prim_id {prim_id} not live in BVH")
        self.primitives[prim_index] = prim
        bounds = prim.bounds()
        self._prim_bounds[prim_index] = bounds
        touched = self._grow_path(self.root, pos, bounds)
        self._invalidate()
        return touched

    def _grow_path(self, node: BVHNode, pos: int, bounds: AABB) -> int:
        """Union ``bounds`` into every node on the path to slice ``pos``."""
        node.bounds = node.bounds.union(bounds)
        if node.is_leaf:
            return 1
        # Leaf slices are laid out in-order, so the left subtree covers a
        # contiguous prefix of positions.
        left_end = self._subtree_end(node.left)
        child = node.left if pos < left_end else node.right
        return 1 + self._grow_path(child, pos, bounds)

    @staticmethod
    def _subtree_end(node: BVHNode) -> int:
        while not node.is_leaf:
            node = node.right
        return node.first_prim + node.prim_count

    def refit(self) -> int:
        """Recompute exact bounds bottom-up without restructuring.

        This is the per-frame BVH refit of the RT pipelines: leaf boxes
        are rebuilt from their (live) primitives, inner boxes from their
        children.  Returns the number of nodes touched — the quantity
        the cycle model charges.
        """
        def rec(node: BVHNode) -> int:
            if node.is_leaf:
                node.bounds = self._range_bounds(node.first_prim,
                                                 node.prim_count)
                return 1
            touched = rec(node.left) + rec(node.right)
            node.bounds = node.left.bounds.union(node.right.bounds)
            return touched + 1

        touched = rec(self.root)
        self._invalidate()
        return touched

    def live_prim_ids(self) -> List[int]:
        """The prim_ids still reachable from a leaf slice."""
        return [self.primitives[i].prim_id for i in self._prim_order]

    # -- access ---------------------------------------------------------------
    def soa(self) -> BVHArrays:
        """The struct-of-arrays view, cached per mutation epoch.

        Mutations (insert/remove/update/refit) bump ``mutation_epoch``,
        so a stale view is rebuilt on next access instead of silently
        serving pre-mutation bounds; callers in the kernels/workloads
        feed its columns to the batch geometry tests instead of walking
        ``BVHNode`` objects scalar-style.
        """
        # getattr guards trees unpickled from caches written before
        # these attributes existed.
        epoch = getattr(self, "mutation_epoch", 0)
        if getattr(self, "_soa", None) is None \
                or getattr(self, "_soa_epoch", 0) != epoch:
            self._soa = BVHArrays(self)
            self._soa_epoch = epoch
        return self._soa

    def leaf_prims(self, node: BVHNode) -> List:
        return [self.primitives[self._prim_order[i]]
                for i in range(node.first_prim, node.first_prim + node.prim_count)]

    def nodes(self) -> List[BVHNode]:
        """All nodes in DFS order (the serialization order real builders emit)."""
        out: List[BVHNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        return out

    def depth(self) -> int:
        def rec(node: BVHNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(rec(node.left), rec(node.right))
        return rec(self.root)

    # -- traversal --------------------------------------------------------------
    def traverse(self, ray: Ray, intersector: Callable,
                 mode: str = "closest") -> TraversalResult:
        """While-while stack traversal (Algorithm 3).

        ``mode`` is "closest" (shrink tmax to the nearest hit, as in path
        tracing), "any" (stop at the first hit, as in shadow rays), or
        "all" (collect every hit, as in radius search).
        """
        if mode not in ("closest", "any", "all"):
            raise ConfigurationError(f"unknown traversal mode {mode!r}")
        visits: List[VisitEvent] = []
        all_hits: List[int] = []
        closest_t, closest_prim = ray.tmax, None
        tmax = ray.tmax
        # The ray with [tmin, tmax] clipping applied.  Rebuilding a Ray
        # is deterministic, so one shared object reused until tmax
        # actually shrinks is bit-identical to a fresh clip per test —
        # and keeps the hot loop allocation-free outside "closest" hits.
        clipped = ray
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf_hit = False
                for prim in self.leaf_prims(node):
                    hit = intersector(clipped, prim)
                    if hit is not None:
                        leaf_hit = True
                        all_hits.append(prim.prim_id)
                        if hit.t < closest_t:
                            closest_t, closest_prim = hit.t, prim.prim_id
                        if mode == "closest" and hit.t < tmax:
                            tmax = hit.t
                            clipped = Ray(ray.origin, ray.direction,
                                          ray.tmin, tmax)
                visits.append(VisitEvent(node, "leaf", node.prim_count, leaf_hit))
                if mode == "any" and leaf_hit:
                    break
            else:
                span = ray_aabb_intersect(clipped, node.bounds)
                visits.append(VisitEvent(node, "inner", 1, span is not None))
                if span is not None:
                    stack.append(node.right)
                    stack.append(node.left)
        if closest_prim is None:
            closest_t = math.inf
        return TraversalResult(closest_t, closest_prim,
                               tuple(all_hits), tuple(visits))


class Instance:
    """A BLAS reference with an object-to-world rigid transform.

    Only translation + uniform scale are modelled; that is all the
    procedural workloads need, and it keeps the R-XFORM functional model
    (world ray -> object ray) trivially invertible.
    """

    __slots__ = ("blas", "translation", "scale", "instance_id")

    def __init__(self, blas: BVH, translation: Vec3 = None,
                 scale: float = 1.0, instance_id: int = -1):
        if scale <= 0:
            raise ConfigurationError("instance scale must be positive")
        self.blas = blas
        self.translation = translation if translation is not None else Vec3()
        self.scale = scale
        self.instance_id = instance_id

    def bounds(self) -> AABB:
        b = self.blas.root.bounds
        return AABB(self._to_world(b.lo), self._to_world(b.hi))

    @property
    def prim_id(self) -> int:
        return self.instance_id

    def _to_world(self, p: Vec3) -> Vec3:
        return p * self.scale + self.translation

    def world_to_object(self, ray: Ray) -> Ray:
        """The functional model of the R-XFORM unit."""
        inv = 1.0 / self.scale
        origin = (ray.origin - self.translation) * inv
        return Ray(origin, ray.direction, ray.tmin * inv, ray.tmax * inv)

    def t_to_world(self, t_object: float) -> float:
        return t_object * self.scale


class TwoLevelHit(NamedTuple):
    t: float
    instance_id: int
    prim_id: int


class TwoLevelResult(NamedTuple):
    hit: Optional[TwoLevelHit]
    tlas_visits: Tuple[VisitEvent, ...]
    blas_visits: Tuple[VisitEvent, ...]
    xforms: int


class TwoLevelBVH:
    """TLAS over instances, each pointing into a BLAS.

    Crossing TLAS->BLAS requires one ray transform, which Table III
    accounts as an R-XFORM µop; the count is reported so the TTA+ timing
    model charges it.
    """

    def __init__(self, instances: Sequence[Instance]):
        if not instances:
            raise ConfigurationError("two-level BVH needs at least one instance")
        self.instances = list(instances)
        self.tlas = BVH(self.instances, max_leaf_size=1)

    def trace(self, ray: Ray, intersector: Callable) -> TwoLevelResult:
        tlas_visits: List[VisitEvent] = []
        blas_visits: List[VisitEvent] = []
        xforms = 0
        best: Optional[TwoLevelHit] = None
        tmax = ray.tmax
        # The original clips once per *node*: a shrink while visiting a
        # leaf's instances must not affect later instances of the same
        # leaf, so the rebuild happens here rather than at the shrink.
        clipped, clip_tmax = ray, tmax
        stack = [self.tlas.root]
        while stack:
            node = stack.pop()
            if tmax != clip_tmax:
                clipped = Ray(ray.origin, ray.direction, ray.tmin, tmax)
                clip_tmax = tmax
            span = ray_aabb_intersect(clipped, node.bounds)
            if node.is_leaf:
                tlas_visits.append(VisitEvent(node, "leaf", 1, span is not None))
                if span is None:
                    continue
                for instance in self.tlas.leaf_prims(node):
                    xforms += 1
                    object_ray = instance.world_to_object(clipped)
                    result = instance.blas.traverse(object_ray, intersector)
                    blas_visits.extend(result.visits)
                    if result.closest_prim is not None:
                        t_world = instance.t_to_world(result.closest_t)
                        if t_world < tmax:
                            tmax = t_world
                            best = TwoLevelHit(t_world, instance.instance_id,
                                               result.closest_prim)
            else:
                tlas_visits.append(VisitEvent(node, "inner", 1, span is not None))
                if span is not None:
                    stack.append(node.right)
                    stack.append(node.left)
        return TwoLevelResult(best, tuple(tlas_visits), tuple(blas_visits), xforms)
