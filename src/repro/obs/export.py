"""Exporters: Chrome/Perfetto trace JSON, metrics JSON, terminal summary.

The trace format is the Chrome Trace Event JSON object form (a dict
with ``traceEvents``), which both ``chrome://tracing`` and Perfetto's
https://ui.perfetto.dev open directly.  Cycle-domain timestamps map to
microseconds one-to-one (1 cycle == 1 "µs"), so the UI's time axis
reads directly in cycles.

Track layout: each tracer *category* becomes a process (``pid``) named
after it, each emitting *unit* a thread (``tid``) within that process —
so the scheduler clock, the SMs, the RTA intersection pools, and the
memory system render as four separate track groups.
"""

import json
import os
import pathlib
import time
from typing import Any, Dict, List, Optional

from repro.obs.tracer import CATEGORIES, Tracer

#: Diagnostic-dump directory: when set, guard bundles (and the trace
#: tail that goes with them) are written here so CI can upload them as
#: artifacts on failure.
OBS_DIR_ENV = "REPRO_OBS_DIR"


# -- Chrome/Perfetto trace ---------------------------------------------------------
def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's ring as a Chrome Trace Event JSON object."""
    pids: Dict[str, int] = {cat: i + 1 for i, cat in enumerate(CATEGORIES)}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []

    for cat, unit, name, ts, dur, arg in tracer.events():
        pid = pids.get(cat)
        if pid is None:
            pid = pids[cat] = len(pids) + 1
        tid = tids.get((cat, unit))
        if tid is None:
            tid = tids[(cat, unit)] = \
                sum(1 for key in tids if key[0] == cat) + 1
            meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": unit}})
        event: Dict[str, Any] = {
            "name": name, "cat": cat, "pid": pid, "tid": tid, "ts": ts,
        }
        if dur > 0:
            event["ph"] = "X"
            event["dur"] = dur
        else:
            event["ph"] = "i"
            event["s"] = "t"
        if arg is not None:
            event["args"] = {"arg": arg}
        events.append(event)

    for cat, pid in pids.items():
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "args": {"name": cat}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "time_unit": "1 trace us == 1 simulated cycle",
            "events_seen": tracer.events_seen,
            "events_kept": tracer.events_kept,
            "events_dropped": tracer.events_dropped,
            "sampling_rate": tracer.rate,
            "launches": [{"label": label, "cycles": cycles}
                         for label, cycles in tracer.launches],
        },
    }


def write_chrome_trace(path, tracer: Tracer) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)) + "\n")
    return path


# -- metrics JSON ------------------------------------------------------------------
def write_metrics_json(path, report: Dict[str, Any]) -> pathlib.Path:
    """Write a label → metrics mapping (or one snapshot dict) as JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, default=str,
                               sort_keys=True) + "\n")
    return path


# -- terminal summary --------------------------------------------------------------
def summarize_trace(tracer: Tracer) -> str:
    """A short human-readable account of what the ring holds."""
    by_cat: Dict[str, int] = {}
    for event in tracer.events():
        by_cat[event[0]] = by_cat.get(event[0], 0) + 1
    cats = ", ".join(f"{cat}={n}" for cat, n in sorted(by_cat.items()))
    dropped = tracer.events_dropped
    lines = [
        f"[obs] {len(tracer)} event(s) buffered "
        f"({tracer.events_seen} seen, rate 1/{tracer.rate}"
        f"{f', {dropped} evicted' if dropped else ''})",
        f"[obs] categories: {cats or '(none)'}",
    ]
    for label, cycles in tracer.launches:
        lines.append(f"[obs] launch {label}: {cycles:.0f} cycles")
    return "\n".join(lines)


def summarize_metrics(snapshot, limit: int = 0) -> str:
    """Scalar metrics as aligned ``name value`` lines."""
    names = snapshot.names()
    if limit:
        names = names[:limit]
    if not names:
        return "[obs] no metrics recorded"
    width = max(len(name) for name in names)
    lines = [f"  {name:<{width}}  {snapshot.get(name):.6g}"
             for name in names]
    extras = []
    for name in sorted(snapshot.series_data):
        series = snapshot.series(name)
        extras.append(f"  {name:<{width}}  "
                      f"[series: {len(series.values)} bucket(s), "
                      f"total {series.total():.6g}]")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histogram(name)
        extras.append(f"  {name:<{width}}  "
                      f"[hist: n={hist.count} mean={hist.mean:.3g} "
                      f"max={hist.max:.3g}]")
    return "\n".join(lines + extras)


# -- guard diagnostic dumps --------------------------------------------------------
def dump_diagnostics(bundle: Dict[str, Any],
                     tracer: Optional[Tracer] = None) -> Optional[str]:
    """Persist a guard bundle (+ trace) under ``$REPRO_OBS_DIR``.

    Returns the bundle path, or None when the variable is unset or the
    write fails — diagnostics dumping must never raise into the abort
    path that triggered it.
    """
    root = os.environ.get(OBS_DIR_ENV)
    if not root:
        return None
    try:
        directory = pathlib.Path(root)
        directory.mkdir(parents=True, exist_ok=True)
        stamp = f"{int(time.time() * 1000):x}-{os.getpid()}"
        reason = str(bundle.get("reason", "guard")).replace("/", "_")
        path = directory / f"guard-{reason}-{stamp}.json"
        path.write_text(json.dumps(bundle, indent=1, default=str) + "\n")
        if tracer is not None and len(tracer):
            write_chrome_trace(directory / f"trace-{reason}-{stamp}.json",
                               tracer)
        return str(path)
    except Exception:
        return None
