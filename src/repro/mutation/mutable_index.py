"""Mutable resident indexes: write application, maintenance, epoch swap.

:class:`MutableResidentIndex` wraps a :class:`repro.serve.index.
ResidentIndex` and gives the loadtest a single surface for the write
path:

* ``apply(event, rng)`` — run one write through the flavor's mutator,
  charge its cycle cost, and (every ``refit_threshold`` writes) make a
  maintenance decision via the :class:`~repro.mutation.scheduler.
  RebuildPolicy`: refit in place, or schedule a rebuild.
* ``ensure_ready(t)`` — called before each batch dispatch: install a
  finished rebuild (epoch swap) and refresh the memory image and
  derived caches if any write landed since the last launch.

**Epoch swap.**  A rebuild decided at virtual time ``t`` completes at
``t + rebuild_cycles/clock``; until then the old (decayed) tree keeps
serving and further writes keep applying to it — they are the write log
the swap must not lose.  At install time the new tree is bulk-built
over the live set *at that moment*, which is content-identical to
building from the decision-time snapshot and replaying the interim log
(the mutators maintain the live set exactly); the interim write count
is reported as ``log_replayed``.  In-flight batches are safe because
dispatch is atomic in virtual time: lowering happens at ``t_close``
against whichever tree ``ensure_ready`` left installed.

**Staleness contract.**  A refresh rebuilds the memory image in a fresh
address space, re-allocates the query/result buffers, clears the
index's lowered-job memo and the workload's job/stream caches, and
bumps ``mutation_epoch`` on both — the epoch the exec build cache and
the backend config cache key on.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.memsys.memory_image import AddressSpace
from repro.mutation.mutators import Mutator, make_mutator
from repro.mutation.scheduler import (
    RebuildPolicy,
    rebuild_cycles,
    refit_cycles,
    write_cycles,
)
from repro.mutation.stream import WriteEvent, WriteProfile
from repro.serve.clock import DEFAULT_CLOCK, ServiceClock


@dataclass(frozen=True)
class MutationConfig:
    """Everything the loadtest needs to run a write stream: the stream
    itself plus the maintenance schedule.  ``None`` in the loadtest
    means no mutation machinery is constructed at all — the serve path
    stays stat-for-stat identical to a read-only run."""

    write: WriteProfile
    policy: RebuildPolicy = field(default_factory=RebuildPolicy)
    refit_threshold: int = 64

#: query class -> (query entry bytes, result entry bytes per query).
#: Mirrors the make_*_workload buffer sizing; knn results scale by k.
_BUF_BYTES = {
    "point": (4, 4),
    "range": (16, 4),
    "knn": (12, 4),        # result side multiplied by workload.k
    "radius": (12, 4),
}


def refresh_workload_image(query_class: str, workload: Any) -> None:
    """Re-materialize the memory image after structural mutation.

    A fresh :class:`AddressSpace` re-places the (possibly re-shaped)
    tree and re-allocates the query/result buffers with the same
    per-class sizing the workload factories use, then drops every
    derived cache keyed on the old layout.
    """
    tree = workload.bvh if query_class == "radius" else workload.tree
    n = workload.n_queries
    q_bytes, r_bytes = _BUF_BYTES[query_class]
    if query_class == "knn":
        r_bytes *= workload.k
    space = AddressSpace()
    workload.space = space
    workload.image = space.place_tree(tree.nodes())
    workload.query_buf = space.alloc(q_bytes * n, align=128)
    workload.result_buf = space.alloc(r_bytes * n, align=128)
    workload._jobs_cache.clear()
    workload._stream_cache.clear()
    workload.mutation_epoch = getattr(workload, "mutation_epoch", 0) + 1


class MutableResidentIndex:
    """The write path and maintenance state for one resident index."""

    def __init__(self, index: Any, policy: RebuildPolicy = RebuildPolicy(),
                 refit_threshold: int = 64,
                 clock: ServiceClock = DEFAULT_CLOCK,
                 registry=None, tracer=None, platform: str = ""):
        if refit_threshold < 1:
            from repro.errors import ConfigurationError
            raise ConfigurationError("refit threshold must be >= 1")
        self.index = index
        self.policy = policy
        self.refit_threshold = refit_threshold
        self.clock = clock
        self.registry = registry
        self.tracer = tracer
        self.platform = platform
        self.mutator: Mutator = make_mutator(index.query_class,
                                             index.workload)
        self.baseline_decay = max(self.mutator.quality()["decay"], 1e-12)
        # -- counters ------------------------------------------------------
        self.writes = 0
        self.writes_by_op: Dict[str, int] = {}
        self.refits = 0
        self.rebuilds = 0
        self.writes_since_refit = 0
        self.writes_since_rebuild = 0
        self.epoch = 0
        #: (t, kind, cycles, decay_ratio) per refit/rebuild decision.
        self.maintenance_events: List[Dict[str, float]] = []
        self._dirty = False
        self._rebuild_ready_at: Optional[float] = None
        self._log_since_trigger = 0

    # -- write path --------------------------------------------------------
    def apply(self, event: WriteEvent, rng) -> float:
        """Apply one write at virtual time ``event.t``; returns the
        device cycles the write (plus any maintenance it triggered)
        costs."""
        self.ensure_ready(event.t)
        op, touched = self.mutator.apply(event.op, rng)
        self.writes += 1
        self.writes_by_op[op] = self.writes_by_op.get(op, 0) + 1
        self.writes_since_refit += 1
        self.writes_since_rebuild += 1
        if self._rebuild_ready_at is not None:
            self._log_since_trigger += 1
        self._dirty = True
        cycles = write_cycles(touched)
        if self.registry is not None:
            self.registry.add("mutation.writes")
            self.registry.add(f"mutation.{op}")
        if self.writes_since_refit >= self.refit_threshold:
            cycles += self._maintain(event.t)
            self.writes_since_refit = 0
        return cycles

    def _maintain(self, t: float) -> float:
        """One maintenance point: refit, or schedule a rebuild."""
        decay_ratio = self.decay_ratio()
        rebuild = (self.policy.wants_rebuild(self.writes_since_rebuild,
                                             decay_ratio)
                   and self._rebuild_ready_at is None)
        if rebuild:
            cycles = rebuild_cycles(self.mutator.live_size)
            self._rebuild_ready_at = t + self.clock.seconds(cycles)
            self._log_since_trigger = 0
            kind = "rebuild_scheduled"
        else:
            touched = self.mutator.refit()
            cycles = refit_cycles(touched)
            self.refits += 1
            self._dirty = True
            kind = "refit"
            if self.registry is not None:
                self.registry.add("mutation.refits")
        self.maintenance_events.append({
            "t": t, "kind": kind, "cycles": cycles,
            "decay_ratio": decay_ratio,
        })
        if self.tracer is not None:
            self.tracer.emit("mutation", self.platform, kind,
                             self.clock.cycles(t), cycles,
                             {"decay_ratio": round(decay_ratio, 4)})
        return cycles

    def ensure_ready(self, t: float) -> None:
        """Install a finished rebuild and refresh derived state so the
        next launch sees a consistent (tree, image, caches) triple."""
        if self._rebuild_ready_at is not None and t >= self._rebuild_ready_at:
            self.mutator.rebuild()
            self.rebuilds += 1
            self.epoch += 1
            self.writes_since_rebuild = 0
            self.maintenance_events.append({
                "t": t, "kind": "rebuild_installed", "cycles": 0.0,
                "decay_ratio": self.decay_ratio(),
                "log_replayed": float(self._log_since_trigger),
            })
            if self.registry is not None:
                self.registry.add("mutation.rebuilds")
            if self.tracer is not None:
                self.tracer.emit("mutation", self.platform,
                                 "rebuild_installed", self.clock.cycles(t),
                                 0.0,
                                 {"log_replayed": self._log_since_trigger})
            self._rebuild_ready_at = None
            self._log_since_trigger = 0
            self._dirty = True
        if self._dirty:
            self._refresh()

    def _refresh(self) -> None:
        refresh_workload_image(self.index.query_class, self.index.workload)
        self.index._lowered.clear()
        self.index.mutation_epoch = getattr(
            self.index, "mutation_epoch", 0) + 1
        self._dirty = False

    # -- inspection --------------------------------------------------------
    def decay_ratio(self) -> float:
        return self.mutator.quality()["decay"] / self.baseline_decay

    def quality(self) -> Dict[str, float]:
        return self.mutator.quality()

    def counters(self) -> Dict[str, Any]:
        return {
            "writes": self.writes,
            "by_op": dict(sorted(self.writes_by_op.items())),
            "refits": self.refits,
            "rebuilds": self.rebuilds,
            "epoch": self.epoch,
            "live_items": self.mutator.live_size,
            "decay_ratio": round(self.decay_ratio(), 6),
        }
