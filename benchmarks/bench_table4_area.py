"""Table IV — area of baseline RTA vs TTA+ (and TTA's Ray-Box delta)."""

import pytest

from repro.energy import (
    baseline_rta_area_um2,
    tta_area_report,
    ttaplus_area_report,
)
from repro.energy.area import tta_ray_box_overhead_pct
from repro.harness.results import Table


def test_table4_area(benchmark, save_table):
    def build():
        table = Table(
            "Table IV — area comparison (µm², FreePDK45)",
            ["configuration", "total_um2", "vs_baseline_pct", "paper_pct"],
        )
        table.add_row("baseline RTA (one set)", baseline_rta_area_um2(),
                      0.0, 0.0)
        no_sqrt = ttaplus_area_report(with_sqrt=False)
        table.add_row("TTA+ without SQRT", no_sqrt.total_um2,
                      no_sqrt.vs_baseline_pct, -10.8)
        with_sqrt = ttaplus_area_report(with_sqrt=True)
        table.add_row("TTA+ with SQRT", with_sqrt.total_um2,
                      with_sqrt.vs_baseline_pct, 36.4)
        tta = tta_area_report()
        table.add_row("TTA (modified Ray-Box)", tta.total_um2,
                      tta.vs_baseline_pct, "<1")
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("table4_area", table)
    assert table.rows[1][2] == pytest.approx(-10.8, abs=0.1)
    assert table.rows[2][2] == pytest.approx(36.4, abs=0.1)
    assert 0 < table.rows[3][2] < 1.0          # "<1% area overhead"
    assert tta_ray_box_overhead_pct() == pytest.approx(1.8, abs=0.05)
