"""Unit tests for geometric primitives and intersection tests."""

import math

import pytest

from repro.geometry import (
    AABB,
    Ray,
    Sphere,
    Triangle,
    Vec3,
    cross,
    dot,
    point_distance_below,
    ray_aabb_intersect,
    ray_sphere_intersect,
    ray_triangle_intersect,
)


class TestVec3:
    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)
        assert a * 2 == Vec3(2, 4, 6)
        assert 2 * a == Vec3(2, 4, 6)
        assert b / 2 == Vec3(2, 2.5, 3)
        assert -a == Vec3(-1, -2, -3)

    def test_dot_and_cross(self):
        assert dot(Vec3(1, 2, 3), Vec3(4, 5, 6)) == 32
        assert cross(Vec3(1, 0, 0), Vec3(0, 1, 0)) == Vec3(0, 0, 1)
        # Cross product is perpendicular to both inputs.
        a, b = Vec3(1, 2, 3), Vec3(-2, 0.5, 4)
        c = cross(a, b)
        assert dot(c, a) == pytest.approx(0)
        assert dot(c, b) == pytest.approx(0)

    def test_length_and_normalize(self):
        v = Vec3(3, 4, 0)
        assert v.length() == 5
        assert v.length_squared() == 25
        assert v.normalized().length() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3().normalized()

    def test_component_access(self):
        v = Vec3(7, 8, 9)
        assert [v.component(i) for i in range(3)] == [7, 8, 9]
        with pytest.raises(IndexError):
            v.component(3)


class TestAABB:
    def test_union_and_containment(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(2, 2, 2), Vec3(3, 3, 3))
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)
        assert u.contains_point(Vec3(1.5, 1.5, 1.5))

    def test_empty_box_unions_as_identity(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert AABB.empty().is_empty()
        u = AABB.empty().union(a)
        assert u.lo == a.lo and u.hi == a.hi

    def test_surface_area_and_axis(self):
        box = AABB(Vec3(0, 0, 0), Vec3(4, 2, 1))
        assert box.surface_area() == pytest.approx(2 * (8 + 2 + 4))
        assert box.longest_axis() == 0

    def test_centroid(self):
        box = AABB(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.centroid() == Vec3(1, 2, 3)


class TestRayAABB:
    def test_hit_through_center(self):
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        span = ray_aabb_intersect(ray, box)
        assert span is not None
        assert span[0] == pytest.approx(5)
        assert span[1] == pytest.approx(6)

    def test_miss(self):
        ray = Ray(Vec3(-5, 5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_box_behind_origin_misses(self):
        ray = Ray(Vec3(5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_axis_parallel_ray_inside_slab(self):
        # Direction has zero y/z: the reciprocal saturates, interval logic
        # must still accept a ray travelling inside the box.
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0))
        box = AABB(Vec3(-10, 0, 0), Vec3(10, 1, 1))
        assert ray_aabb_intersect(ray, box) is not None

    def test_tmax_clips_hit(self):
        ray = Ray(Vec3(-5, 0.5, 0.5), Vec3(1, 0, 0), tmax=2.0)
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert ray_aabb_intersect(ray, box) is None

    def test_origin_inside_box(self):
        ray = Ray(Vec3(0.5, 0.5, 0.5), Vec3(0, 1, 0))
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        span = ray_aabb_intersect(ray, box)
        assert span is not None and span[0] == pytest.approx(0.0)


class TestRayTriangle:
    def tri(self):
        return Triangle(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0), prim_id=7)

    def test_center_hit_with_barycentrics(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, 5), Vec3(0, 0, -1)), self.tri())
        assert hit is not None
        assert hit.t == pytest.approx(5)
        assert hit.u == pytest.approx(0.25)
        assert hit.v == pytest.approx(0.25)

    def test_miss_outside_edge(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.9, 0.9, 5), Vec3(0, 0, -1)), self.tri())
        assert hit is None

    def test_parallel_ray_misses(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0, 0, 1), Vec3(1, 0, 0)), self.tri())
        assert hit is None

    def test_hit_behind_origin_rejected(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, -5), Vec3(0, 0, -1)), self.tri())
        assert hit is None

    def test_tmax_clip(self):
        hit = ray_triangle_intersect(
            Ray(Vec3(0.25, 0.25, 5), Vec3(0, 0, -1), tmax=4.0), self.tri())
        assert hit is None

    def test_barycentric_point_reconstruction(self):
        tri = Triangle(Vec3(1, 1, 0), Vec3(3, 1, 1), Vec3(1, 4, 2))
        ray = Ray(Vec3(1.5, 2.0, -5), Vec3(0.02, -0.03, 1).normalized())
        hit = ray_triangle_intersect(ray, tri)
        if hit is not None:
            p = ray.point_at(hit.t)
            q = (tri.v0 * (1 - hit.u - hit.v) + tri.v1 * hit.u + tri.v2 * hit.v)
            assert (p - q).length() < 1e-6


class TestRaySphere:
    def test_front_hit(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        hit = ray_sphere_intersect(Ray(Vec3(0, 0, 5), Vec3(0, 0, -1)), s)
        assert hit is not None
        assert hit.t == pytest.approx(4.0)

    def test_origin_inside_returns_far_root(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        hit = ray_sphere_intersect(Ray(Vec3(0, 0, 0), Vec3(0, 0, -1)), s)
        assert hit is not None
        assert hit.t == pytest.approx(1.0)

    def test_miss(self):
        s = Sphere(Vec3(0, 0, 0), 1.0)
        assert ray_sphere_intersect(Ray(Vec3(0, 5, 5), Vec3(0, 0, -1)), s) is None

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(Vec3(), -1.0)

    def test_bounds_enclose_sphere(self):
        s = Sphere(Vec3(1, 2, 3), 0.5)
        b = s.bounds()
        assert b.lo == Vec3(0.5, 1.5, 2.5)
        assert b.hi == Vec3(1.5, 2.5, 3.5)


class TestPointDistance:
    def test_below_threshold(self):
        assert point_distance_below(Vec3(0, 0, 0), Vec3(1, 0, 0), 1.5)

    def test_at_threshold_is_not_below(self):
        assert not point_distance_below(Vec3(0, 0, 0), Vec3(1, 0, 0), 1.0)

    def test_matches_sqrt_distance(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 6, 3)
        d = math.sqrt((b - a).length_squared())
        assert point_distance_below(a, b, d + 1e-9)
        assert not point_distance_below(a, b, d - 1e-9)
