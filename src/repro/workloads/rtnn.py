"""RTNN radius-search workloads [105] on synthetic LiDAR clouds (§IV-A).

Each data point becomes a sphere of the query radius; queries are a
random subset of the points themselves (the neighbor-search pattern of
point-cloud processing).  Golden results come from brute-force range
search over the raw points.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.batch import point_distance_below_batch, points_soa
from repro.geometry.sphere import Sphere
from repro.geometry.vec import Vec3
from repro.kernels.radius_search import (
    RadiusKernelArgs,
    build_radius_jobs,
    radius_query,
)
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import TraversalJob
from repro.trees.bvh import BVH
from repro.trees.layout import TreeImage
from repro.workloads.pointcloud import synth_lidar_cloud


@dataclass
class RTNNWorkload:
    points: List[Vec3]
    radius: float
    bvh: BVH
    image: TreeImage
    space: AddressSpace
    queries: List[Vec3]
    query_buf: int
    result_buf: int
    # Job lowering is pure per (bvh, queries, radius, flavor); cache it
    # across repeated runs of the same workload object.
    _jobs_cache: Dict[str, List[TraversalJob]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _stream_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _points_soa: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)
    #: prim_ids deleted by online mutation; tombstoned in ``points`` so
    #: ids stay stable, filtered out of golden results.
    _dead_points: set = field(
        default_factory=set, init=False, repr=False, compare=False)
    #: bumped by every image refresh after structural mutation; the exec
    #: build cache refuses to persist a workload with nonzero epoch.
    mutation_epoch: int = field(default=0, init=False, compare=False)

    def kernel_args(self, jobs: Sequence[TraversalJob] = ()) -> RadiusKernelArgs:
        return RadiusKernelArgs(
            bvh=self.bvh,
            queries=self.queries,
            radius=self.radius,
            query_buf=self.query_buf,
            result_buf=self.result_buf,
            jobs=list(jobs),
            stream_cache=self._stream_cache,
        )

    def jobs(self, flavor: str) -> List[TraversalJob]:
        cached = self._jobs_cache.get(flavor)
        if cached is None:
            cached = self._jobs_cache[flavor] = build_radius_jobs(
                self.bvh, self.queries, self.radius, flavor=flavor)
        return cached

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def golden(self, query: Vec3) -> Tuple[int, ...]:
        """Brute-force neighbor set via one batched Algorithm-2 sweep.

        ``p - query`` then squared-length-below-r² is exactly what
        :func:`point_distance_below_batch` computes, so the mask matches
        the old scalar comprehension bit-for-bit.
        """
        soa = self._points_soa
        if soa is None:
            soa = self._points_soa = points_soa(self.points)
        q = np.array((query.x, query.y, query.z), dtype=np.float64)
        mask = point_distance_below_batch(q, soa, self.radius)
        ids = np.flatnonzero(mask).tolist()
        dead = self._dead_points
        if dead:
            ids = [i for i in ids if i not in dead]
        return tuple(ids)

    def trace(self, query: Vec3):
        return radius_query(self.bvh, query, self.radius)


def make_rtnn_workload(n_points: int = 4096, n_queries: int = 512,
                       radius: float = 1.0, seed: int = 0,
                       max_leaf_size: int = 4,
                       churn: Optional[str] = None) -> RTNNWorkload:
    """``churn`` (``<mix>@<writes>``) pre-ages the BVH with a seeded
    write burst before serving — see :mod:`repro.mutation`."""
    if n_queries < 1:
        raise ConfigurationError("need at least one query")
    points = synth_lidar_cloud(n_points, seed=seed)
    spheres = [Sphere(p, radius, prim_id=i) for i, p in enumerate(points)]
    bvh = BVH(spheres, max_leaf_size=max_leaf_size, method="sah")
    rng = random.Random(seed + 1)
    queries = [points[rng.randrange(n_points)] for _ in range(n_queries)]

    space = AddressSpace()
    image = space.place_tree(bvh.nodes())
    query_buf = space.alloc(12 * n_queries, align=128)
    result_buf = space.alloc(4 * n_queries, align=128)
    workload = RTNNWorkload(points, radius, bvh, image, space, queries,
                            query_buf, result_buf)
    if churn is not None:
        from repro.mutation import apply_churn
        apply_churn(workload, "radius", churn, seed=seed + 7)
    return workload
