"""Tests for the execution service (repro.exec).

Covers the acceptance properties of the subsystem:

* spec keys are stable, and change with any parameter or code version;
* the disk cache round-trips results byte-identically, survives
  corruption, and invalidates on spec/version change;
* the worker pool retries, times out, and degrades to serial execution;
* ``fig12`` at smoke scale produces identical tables serially and with
  ``jobs=2``, and a repeat invocation executes zero simulations.
"""

import math
import os
import pickle
import time

import pytest

import repro.exec as exec_mod
from repro.exec import (
    ExecutionService,
    ResultCache,
    RunSpec,
    make_spec,
)
from repro.exec.pool import ParallelRunner, run_serial
from repro.exec.service import execute_payload


# -- top-level worker functions (must be picklable) ---------------------------------
def _square(x):
    return x * x


def _boom(_):
    raise RuntimeError("intentional failure")


def _fail_once(path):
    """Fails on the first call for ``path``, succeeds afterwards."""
    if os.path.exists(path):
        return "recovered"
    with open(path, "w") as fh:
        fh.write("attempted")
    raise RuntimeError("first attempt fails")


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _die(_):
    os._exit(13)


def _tiny_btree_spec(platform="gpu", n_keys=256, version=None, **kw):
    return make_spec(
        "btree",
        dict(variant="btree", n_keys=n_keys, n_queries=64, seed=1),
        platform,
        config={"policy": "scaled"},
        run_kwargs=kw or None,
        version=version,
    )


# -- RunSpec ------------------------------------------------------------------------
class TestRunSpec:
    def test_key_is_stable(self):
        assert _tiny_btree_spec().key == _tiny_btree_spec().key

    def test_key_covers_every_field(self):
        base = _tiny_btree_spec()
        assert _tiny_btree_spec(n_keys=512).key != base.key
        assert _tiny_btree_spec(platform="tta").key != base.key
        assert _tiny_btree_spec(version="0.0.0+schema1").key != base.key
        assert _tiny_btree_spec(verify=False).key != base.key
        other_config = make_spec("btree", base.workload, "gpu",
                                 config={"policy": "scaled",
                                         "pressure": 5.0})
        assert other_config.key != base.key

    def test_json_round_trip(self):
        spec = _tiny_btree_spec(verify=False)
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.key == spec.key
        assert hash(again) == hash(spec)

    def test_rejects_unknown_kind_and_unserializable_params(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            make_spec("quadtree", {}, "gpu")
        with pytest.raises(ConfigurationError):
            make_spec("btree", {"fn": lambda: None}, "gpu")


# -- ResultCache ---------------------------------------------------------------------
class TestResultCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_btree_spec()
        result = execute_payload(spec.to_json())
        assert cache.get(spec) is None
        cache.put(spec, result)
        hit = cache.get(spec)
        assert pickle.dumps(hit, protocol=4) == \
            pickle.dumps(result, protocol=4)

    def test_miss_on_spec_or_version_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_btree_spec()
        cache.put(spec, "payload")
        assert cache.get(_tiny_btree_spec(n_keys=512)) is None
        assert cache.get(_tiny_btree_spec(version="9.9.9+schema1")) is None
        assert cache.get(spec) == "payload"

    def test_corrupt_entry_is_evicted_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _tiny_btree_spec()
        cache.put(spec, "payload")
        pkl, _ = cache._paths(spec.key)
        pkl.write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        assert not pkl.exists()

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats()["entries"] == 0
        cache.put(_tiny_btree_spec(), "a")
        cache.put(_tiny_btree_spec(n_keys=512), "b")
        stats = cache.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0


# -- pool ----------------------------------------------------------------------------
class TestPool:
    def test_run_serial_ok_and_error(self):
        outcomes = run_serial(_square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        failed = run_serial(_boom, [None], retries=2)[0]
        assert not failed.ok and failed.attempts == 3
        assert "intentional failure" in failed.error

    def test_run_serial_retry_recovers(self, tmp_path):
        outcome = run_serial(_fail_once, [str(tmp_path / "s")], retries=1)[0]
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_parallel_map(self):
        with ParallelRunner(jobs=2) as runner:
            outcomes = runner.map(_square, list(range(8)))
        assert [o.value for o in outcomes] == [n * n for n in range(8)]

    def test_parallel_retry_recovers(self, tmp_path):
        with ParallelRunner(jobs=2, retries=1) as runner:
            outcomes = runner.map(
                _fail_once, [str(tmp_path / f"p{i}") for i in range(3)])
        assert all(o.ok and o.value == "recovered" and o.attempts == 2
                   for o in outcomes)

    def test_parallel_exhausted_retries_reports_error(self):
        with ParallelRunner(jobs=2, retries=1) as runner:
            outcome = runner.map(_boom, [None])[0]
        assert outcome.status == "error" and outcome.attempts == 2

    def test_timeout_kills_stuck_runs(self):
        started = time.monotonic()
        with ParallelRunner(jobs=2, timeout=0.5, retries=0) as runner:
            outcomes = runner.map(_sleep, [30, 0.01])
        elapsed = time.monotonic() - started
        assert outcomes[0].status == "timeout"
        assert outcomes[1].ok and outcomes[1].value == 0.01
        assert elapsed < 20, f"timeout did not bite ({elapsed:.1f}s)"

    def test_broken_worker_does_not_sink_siblings(self):
        with ParallelRunner(jobs=2, retries=0) as runner:
            outcomes = runner.map(_die, [None])
        assert outcomes[0].status == "error"
        with ParallelRunner(jobs=2, retries=0) as runner:
            outcomes = runner.map(_square, [5])
        assert outcomes[0].ok and outcomes[0].value == 25


# -- service -------------------------------------------------------------------------
def _assert_same_run(a, b):
    assert a.workload == b.workload and a.platform == b.platform
    assert a.cycles == b.cycles
    assert a.stats.warp_instructions.as_dict() == \
        b.stats.warp_instructions.as_dict()
    assert a.stats.memory == b.stats.memory
    assert pickle.dumps(a.energy) == pickle.dumps(b.energy)


class TestExecutionService:
    def test_memoizes_within_process(self, tmp_path):
        service = ExecutionService(cache=ResultCache(tmp_path))
        spec = _tiny_btree_spec()
        first = service.run(spec)
        assert service.run(spec) is first
        assert service.manifest.executed == 1
        assert service.manifest.total == 1

    def test_disk_cache_resumes_across_services(self, tmp_path):
        spec = _tiny_btree_spec()
        writer = ExecutionService(cache=ResultCache(tmp_path))
        fresh = writer.run(spec)
        reader = ExecutionService(cache=ResultCache(tmp_path))
        cached = reader.run(spec)
        assert reader.manifest.executed == 0
        assert reader.manifest.cached == 1
        _assert_same_run(fresh, cached)

    def test_run_many_parallel_matches_serial(self, tmp_path):
        specs = [_tiny_btree_spec(platform=p, n_keys=n)
                 for p in ("gpu", "tta") for n in (256, 512)]
        serial = ExecutionService(jobs=1, cache=None)
        serial.run_many(specs)
        parallel = ExecutionService(jobs=2, cache=ResultCache(tmp_path))
        parallel.run_many(specs)
        assert parallel.manifest.executed == len(specs)
        assert parallel.manifest.failed == 0
        assert parallel.manifest.mode in ("parallel", "serial-fallback")
        for spec in specs:
            _assert_same_run(serial.run(spec), parallel.run(spec))

    def test_serial_fallback_when_pool_unavailable(self, tmp_path,
                                                   monkeypatch):
        def broken(*a, **kw):
            raise OSError("no multiprocessing in this sandbox")

        monkeypatch.setattr("repro.exec.service.ParallelRunner", broken)
        service = ExecutionService(jobs=4, cache=ResultCache(tmp_path))
        specs = [_tiny_btree_spec(), _tiny_btree_spec(platform="tta")]
        service.run_many(specs)
        assert service.manifest.mode == "serial-fallback"
        assert service.manifest.executed == 2
        for spec in specs:
            assert service.run(spec).cycles > 0

    def test_serial_env_forces_in_process(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SERIAL", "1")
        service = ExecutionService(jobs=4, cache=ResultCache(tmp_path))
        specs = [_tiny_btree_spec(), _tiny_btree_spec(platform="tta")]
        service.run_many(specs)
        assert service.manifest.mode == "serial"
        assert service.manifest.executed == 2

    def test_failed_point_is_recorded_then_raised_on_demand(self, tmp_path):
        # n_queries=64 but an invalid variant never reaches a worker-side
        # assert — use a platform the runner rejects instead.
        spec = make_spec("wknd",
                         dict(width=4, height=4, n_spheres=8, bounces=1),
                         "gpu",  # wknd only runs on rta/ttaplus(/opt)
                         config={"policy": "default"})
        service = ExecutionService(jobs=2, cache=ResultCache(tmp_path))
        service.run_many([spec, _tiny_btree_spec()])
        assert service.manifest.failed == 1
        assert service.manifest.executed == 1
        with pytest.raises(Exception):
            service.run(spec)


# -- figure-level equivalence ---------------------------------------------------------
@pytest.fixture
def global_service(tmp_path):
    """Route the experiment helpers through a fresh, disk-backed service."""
    def install(jobs, subdir):
        return exec_mod.configure(jobs=jobs, cache_dir=tmp_path / subdir)

    yield install
    exec_mod.reset()


def _rows_equal(a, b):
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        for cell_a, cell_b in zip(row_a, row_b):
            if isinstance(cell_a, float) and isinstance(cell_b, float):
                if math.isnan(cell_a) and math.isnan(cell_b):
                    continue
                if cell_a != cell_b:
                    return False
            elif cell_a != cell_b:
                return False
    return True


class TestFigureEquivalence:
    def test_fig12_parallel_equals_serial_and_resumes(self, global_service):
        from repro.harness import experiments

        serial_service = global_service(jobs=1, subdir="serial")
        serial = serial_service.run_figure(experiments.fig12_speedup,
                                           "smoke")
        assert serial_service.manifest.executed > 0

        parallel_service = global_service(jobs=2, subdir="parallel")
        parallel = parallel_service.run_figure(experiments.fig12_speedup,
                                               "smoke")
        assert parallel_service.manifest.failed == 0
        assert parallel_service.manifest.executed == \
            parallel_service.manifest.total
        assert serial.headers == parallel.headers
        assert _rows_equal(serial.rows, parallel.rows)

        # Second invocation from a fresh service over the same cache:
        # everything resolves from disk, zero simulations execute.
        resumed_service = global_service(jobs=2, subdir="parallel")
        resumed = resumed_service.run_figure(experiments.fig12_speedup,
                                             "smoke")
        assert resumed_service.manifest.executed == 0
        assert resumed_service.manifest.cached == \
            resumed_service.manifest.total > 0
        assert _rows_equal(serial.rows, resumed.rows)

    def test_recording_pass_collects_without_simulating(self, global_service):
        from repro.harness import experiments

        service = global_service(jobs=2, subdir="collect")
        started = time.monotonic()
        specs = service.collect(experiments.fig12_speedup, "smoke")
        assert time.monotonic() - started < 2.0, "recording ran simulations"
        assert len(specs) > 10
        assert len({s.key for s in specs}) < len(specs) + 1
        assert all(isinstance(s, RunSpec) for s in specs)
        # Nothing was executed or cached by the recording pass.
        assert service.manifest.total == 0
