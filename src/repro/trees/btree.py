"""B-Tree, B*Tree and B+Tree indexes, 9-wide as evaluated in the paper.

All three variants share one node shape that matches Algorithm 1 and the
TTA Query-Key hardware path: an inner node holds up to ``order`` children
and one *fence key* per child (the maximum key in that child's subtree),
so a query is routed to child ``i`` when ``query <= keys[i]`` with keys
sorted ascending.  Leaves hold the actual keys and values.

The variants differ exactly where the paper says they differ:

* **B-Tree** — fence keys are real data keys, so an inner-node equality
  match terminates the search early (``Found`` in Algorithm 1).  Queries
  therefore exit at different depths → control-flow divergence on SIMT.
* **B+Tree** — keys live only in leaves; inner keys are separators, so
  every search runs to leaf depth → uniform depth, less divergence.
* **B*Tree** — like B-Tree but nodes are kept at a >= 2/3 fill factor via
  sibling redistribution before splitting, giving a shallower/denser tree.

Both incremental ``insert`` (with splits/redistribution, used by the
property tests to check balance invariants) and ``bulk_load`` (used by
the benchmarks to build large trees quickly with a controlled fill
factor) are provided.
"""

import random
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

DEFAULT_ORDER = 9  # 9-wide: fully utilizes one TTA Query-Key instruction.


class BTreeNode:
    """One node: ``keys[i]`` is the routing key for ``children[i]``.

    For leaves ``children`` is empty and ``values[i]`` pairs with
    ``keys[i]``.  ``address`` is assigned when the tree is serialized into
    a :class:`~repro.trees.layout.TreeImage`.
    """

    __slots__ = ("keys", "children", "values", "address", "next")

    def __init__(self, keys=None, children=None, values=None):
        self.keys: List[int] = keys if keys is not None else []
        self.children: List["BTreeNode"] = children if children is not None else []
        self.values: List[Any] = values if values is not None else []
        self.address: int = -1
        #: leaf chaining for range scans (B+Tree style sequential access)
        self.next: "BTreeNode" = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __deepcopy__(self, memo):
        # The leaf chain (``next``) is a linked list as long as the
        # leaf count; the default recursive deepcopy overflows the
        # stack on any non-toy tree.  Copy the reachable node graph
        # iteratively, registering every twin in ``memo`` so outer
        # structures (trees, trace caches) alias consistently.
        twin = memo.get(id(self))
        if twin is not None:
            return twin
        import copy as _copy

        frontier, originals, seen = [self], [], set()
        while frontier:
            node = frontier.pop()
            if id(node) in seen or id(node) in memo:
                continue
            seen.add(id(node))
            originals.append(node)
            frontier.extend(node.children)
            if node.next is not None:
                frontier.append(node.next)
        for node in originals:
            clone = BTreeNode(keys=list(node.keys),
                              values=_copy.deepcopy(list(node.values), memo))
            clone.address = node.address
            memo[id(node)] = clone
        for node in originals:
            clone = memo[id(node)]
            clone.children = [memo[id(child)] for child in node.children]
            if node.next is not None:
                clone.next = memo[id(node.next)]
        return memo[id(self)]

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "inner"
        return f"BTreeNode({kind}, keys={self.keys[:4]}{'...' if len(self.keys) > 4 else ''})"


class SearchTrace(NamedTuple):
    """Functional result plus the node-visit trace the timing models consume."""

    found: bool
    value: Any
    path: Tuple[BTreeNode, ...]  # nodes visited root -> exit, in order
    found_at_inner: bool


class _BTreeBase:
    """Shared structure and algorithms for the three variants."""

    #: Whether an equality match at an inner node terminates the search.
    inner_match_terminates = True
    #: Minimum fill fraction enforced on insert-driven splits.
    min_fill = 0.5

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise ConfigurationError("B-Tree order must be >= 3")
        self.order = order
        self.root = BTreeNode()
        self._count = 0
        # Search traces are pure while the tree is unchanged; runners
        # replay the same query stream many times.  Mutations clear it.
        self._trace_cache: dict = {}
        #: bumped by every mutating operation; derived views (memory
        #: images, lowered jobs) key their validity on it.
        self.mutation_epoch = 0

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def search(self, query: int) -> SearchTrace:
        """Route ``query`` from the root, recording every node visited.

        This is the single functional traversal shared by the CUDA-baseline
        kernel model, the TTA model, and the tests; the timing models
        attach costs to the returned path.
        """
        trace = self._trace_cache.get(query)
        if trace is None:
            trace = self._trace_cache[query] = self._search(query)
        return trace

    def _search(self, query: int) -> SearchTrace:
        path: List[BTreeNode] = []
        node = self.root
        while True:
            path.append(node)
            if node.is_leaf:
                for i, key in enumerate(node.keys):
                    if key == query:
                        return SearchTrace(True, node.values[i], tuple(path), False)
                    if key > query:
                        break
                return SearchTrace(False, None, tuple(path), False)
            # Inner node: Algorithm 1 — equality then first key >= query.
            next_child: Optional[BTreeNode] = None
            for i, key in enumerate(node.keys):
                if key == query and self.inner_match_terminates:
                    return SearchTrace(True, query, tuple(path), True)
                if query <= key:
                    next_child = node.children[i]
                    break
            if next_child is None:
                # Query exceeds the subtree's max fence: not present.
                return SearchTrace(False, None, tuple(path), False)
            node = next_child

    def keys_in_order(self) -> List[int]:
        out: List[int] = []
        self._collect(self.root, out)
        return out

    def _collect(self, node: BTreeNode, out: List[int]) -> None:
        if node.is_leaf:
            out.extend(node.keys)
        else:
            for child in node.children:
                self._collect(child, out)

    def height(self) -> int:
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def nodes(self) -> List[BTreeNode]:
        """All nodes in BFS order (the serialization order)."""
        out, frontier = [], [self.root]
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            frontier.extend(node.children)
        return out

    # -- construction -------------------------------------------------------
    def insert(self, key: int, value: Any = None) -> None:
        """Insert ``key``; duplicates are rejected (index semantics)."""
        self._trace_cache.clear()
        leaf, path = self._descend_to_leaf(key)
        if key in leaf.keys:
            raise KeyError(f"duplicate key {key}")
        idx = self._insertion_point(leaf.keys, key)
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value if value is not None else key)
        self._count += 1
        self._repair_upward(path + [leaf])
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1

    def _descend_to_leaf(self, key: int) -> Tuple[BTreeNode, List[BTreeNode]]:
        path: List[BTreeNode] = []
        node = self.root
        while not node.is_leaf:
            path.append(node)
            idx = self._route_index(node.keys, key)
            node = node.children[idx]
        return node, path

    @staticmethod
    def _route_index(keys: Sequence[int], key: int) -> int:
        for i, fence in enumerate(keys):
            if key <= fence:
                return i
        return len(keys) - 1  # beyond max fence: rightmost child

    @staticmethod
    def _insertion_point(keys: Sequence[int], key: int) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _repair_upward(self, path: List[BTreeNode]) -> None:
        """Fix fences bottom-up and split overfull nodes."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            parent = path[depth - 1] if depth > 0 else None
            if self._width(node) > self.order:
                self._overflow(node, parent, path, depth)
            elif parent is not None:
                self._refresh_fence(parent, node)

    @staticmethod
    def _width(node: BTreeNode) -> int:
        return len(node.keys) if node.is_leaf else len(node.children)

    def _refresh_fence(self, parent: BTreeNode, child: BTreeNode) -> None:
        idx = parent.children.index(child)
        parent.keys[idx] = self._max_key(child)

    @staticmethod
    def _max_key(node: BTreeNode) -> int:
        return node.keys[-1]

    def _overflow(self, node: BTreeNode, parent: Optional[BTreeNode],
                  path: List[BTreeNode], depth: int) -> None:
        """Handle an overfull node: B*Trees try redistribution first."""
        if parent is not None and self._try_redistribute(node, parent):
            return
        self._split(node, parent)

    def _try_redistribute(self, node: BTreeNode, parent: BTreeNode) -> bool:
        """Hook for B*Tree sibling redistribution; off by default."""
        return False

    def _split(self, node: BTreeNode, parent: Optional[BTreeNode]) -> None:
        mid = self._width(node) // 2
        if node.is_leaf:
            right = BTreeNode(keys=node.keys[mid:], values=node.values[mid:])
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            right.next = node.next
            node.next = right
        else:
            right = BTreeNode(
                keys=node.keys[mid:], children=node.children[mid:]
            )
            node.keys = node.keys[:mid]
            node.children = node.children[:mid]
        if parent is None:
            new_root = BTreeNode(
                keys=[self._max_key_deep(node), self._max_key_deep(right)],
                children=[node, right],
            )
            self.root = new_root
        else:
            idx = parent.children.index(node)
            parent.children.insert(idx + 1, right)
            parent.keys[idx] = self._max_key_deep(node)
            parent.keys.insert(idx + 1, self._max_key_deep(right))

    def _max_key_deep(self, node: BTreeNode) -> int:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- deletion -----------------------------------------------------------
    def delete(self, key: int) -> None:
        """Remove ``key``, rebalancing by borrow-then-merge."""
        self._trace_cache.clear()
        leaf, path = self._descend_to_leaf(key)
        if key not in leaf.keys:
            raise KeyError(f"key {key} not in tree")
        i = leaf.keys.index(key)
        leaf.keys.pop(i)
        leaf.values.pop(i)
        self._count -= 1
        chain = path + [leaf]
        for depth in range(len(chain) - 1, 0, -1):
            node, parent = chain[depth], chain[depth - 1]
            if self._width(node) < 2:
                self._fix_underflow(node, parent)
            elif node in parent.children:
                self._refresh_fence(parent, node)
        # Collapse trivial roots (and empty-leaf roots stay as-is).
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1

    def _fix_underflow(self, node: BTreeNode, parent: BTreeNode) -> None:
        idx = parent.children.index(node)
        for sibling_idx in (idx - 1, idx + 1):
            if 0 <= sibling_idx < len(parent.children):
                sibling = parent.children[sibling_idx]
                if self._width(sibling) > 2:
                    self._borrow(node, sibling,
                                 from_left=sibling_idx < idx)
                    self._refresh_fence(parent, node)
                    self._refresh_fence(parent, sibling)
                    return
        # No sibling can lend: merge with a neighbor.
        sibling_idx = idx - 1 if idx > 0 else idx + 1
        sibling = parent.children[sibling_idx]
        left, right = ((sibling, node) if sibling_idx < idx
                       else (node, sibling))
        if left.is_leaf:
            left.keys += right.keys
            left.values += right.values
            left.next = right.next
        else:
            left.keys += right.keys
            left.children += right.children
        right_idx = parent.children.index(right)
        parent.children.pop(right_idx)
        parent.keys.pop(right_idx)
        self._refresh_fence(parent, left)

    def _borrow(self, node: BTreeNode, sibling: BTreeNode,
                from_left: bool) -> None:
        if node.is_leaf:
            if from_left:
                node.keys.insert(0, sibling.keys.pop())
                node.values.insert(0, sibling.values.pop())
            else:
                node.keys.append(sibling.keys.pop(0))
                node.values.append(sibling.values.pop(0))
        else:
            if from_left:
                node.children.insert(0, sibling.children.pop())
                node.keys.insert(0, sibling.keys.pop())
            else:
                node.children.append(sibling.children.pop(0))
                node.keys.append(sibling.keys.pop(0))

    # -- range scans -----------------------------------------------------------
    def range_scan(self, lo: int, hi: int) -> List[int]:
        """All keys in [lo, hi], walking the chained leaves in order."""
        if lo > hi:
            return []
        node = self.root
        while not node.is_leaf:
            idx = self._route_index(node.keys, lo)
            node = node.children[idx]
        out: List[int] = []
        while node is not None:
            for key in node.keys:
                if key > hi:
                    return out
                if key >= lo:
                    out.append(key)
            node = node.next
        return out

    # -- bulk loading ---------------------------------------------------------
    @classmethod
    def bulk_load(cls, keys: Sequence[int], order: int = DEFAULT_ORDER,
                  fill: Tuple[float, float] = None, seed: int = 0) -> "_BTreeBase":
        """Build a tree over sorted unique ``keys`` with randomized node fill.

        ``fill`` is a (lo, hi) fraction of ``order``; each node's width is
        drawn uniformly from it, reproducing the per-node child-count
        variation the paper identifies as a divergence source.
        """
        tree = cls(order)
        sorted_keys = sorted(keys)
        if len(set(sorted_keys)) != len(sorted_keys):
            raise ConfigurationError("bulk_load requires unique keys")
        if not sorted_keys:
            return tree
        lo, hi = fill if fill is not None else cls.default_fill()
        rng = random.Random(seed)

        def draw_width() -> int:
            width = int(round(rng.uniform(lo, hi) * order))
            return max(2, min(order, width))

        def chunk(items: List) -> List[List]:
            """Split ``items`` into runs of 2..order elements (last run too)."""
            chunks, i = [], 0
            while i < len(items):
                width = min(draw_width(), len(items) - i)
                chunks.append(items[i:i + width])
                i += width
            if len(chunks) > 1 and len(chunks[-1]) < 2:
                if len(chunks[-2]) + len(chunks[-1]) <= order:
                    chunks[-2] = chunks[-2] + chunks[-1]
                    chunks.pop()
                else:
                    chunks[-1] = chunks[-2][-1:] + chunks[-1]
                    chunks[-2] = chunks[-2][:-1]
            return chunks

        # Level 0: leaves, chained for range scans.
        level = [BTreeNode(keys=list(c), values=list(c))
                 for c in chunk(sorted_keys)]
        for left, right in zip(level, level[1:]):
            left.next = right
        # Upper levels until a single root remains.
        while len(level) > 1:
            level = [
                BTreeNode(keys=[tree._max_key_deep(c) for c in group],
                          children=group)
                for group in chunk(level)
            ]
        tree.root = level[0]
        tree._count = len(sorted_keys)
        return tree

    @classmethod
    def default_fill(cls) -> Tuple[float, float]:
        return (0.5, 1.0)

    # -- invariant checking (used by tests) -----------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        keys = self.keys_in_order()
        assert keys == sorted(keys), "keys out of order"
        assert len(keys) == len(set(keys)), "duplicate keys"
        assert len(keys) == self._count, "count mismatch"
        depths = set()
        self._check_node(self.root, depth=1, depths=depths, is_root=True)
        assert len(depths) <= 1, f"leaves at multiple depths: {depths}"

    def _check_node(self, node: BTreeNode, depth: int, depths: set,
                    is_root: bool) -> None:
        width = self._width(node)
        assert width <= self.order, f"overfull node width={width}"
        if not is_root and self._count > self.order:
            assert width >= 2, "underfull node"
        if node.is_leaf:
            depths.add(depth)
            assert node.keys == sorted(node.keys)
            assert len(node.values) == len(node.keys)
        else:
            assert len(node.keys) == len(node.children)
            for fence, child in zip(node.keys, node.children):
                assert fence == self._max_key_deep(child), "stale fence key"
                self._check_node(child, depth + 1, depths, is_root=False)


class BTree(_BTreeBase):
    """Classic B-Tree: inner equality matches terminate the search."""

    inner_match_terminates = True

    @classmethod
    def default_fill(cls) -> Tuple[float, float]:
        return (0.5, 1.0)


class BStarTree(_BTreeBase):
    """B*Tree: >= 2/3 fill via sibling redistribution before splitting."""

    inner_match_terminates = True
    min_fill = 2.0 / 3.0

    @classmethod
    def default_fill(cls) -> Tuple[float, float]:
        return (0.7, 1.0)

    def _try_redistribute(self, node: BTreeNode, parent: BTreeNode) -> bool:
        idx = parent.children.index(node)
        for sibling_idx in (idx - 1, idx + 1):
            if 0 <= sibling_idx < len(parent.children):
                sibling = parent.children[sibling_idx]
                if self._width(sibling) < self.order - 1:
                    self._shift_into(node, sibling, sibling_idx < idx)
                    self._refresh_fence(parent, node)
                    self._refresh_fence(parent, sibling)
                    return True
        return False

    def _shift_into(self, node: BTreeNode, sibling: BTreeNode,
                    sibling_is_left: bool) -> None:
        if node.is_leaf:
            if sibling_is_left:
                sibling.keys.append(node.keys.pop(0))
                sibling.values.append(node.values.pop(0))
            else:
                sibling.keys.insert(0, node.keys.pop())
                sibling.values.insert(0, node.values.pop())
        else:
            if sibling_is_left:
                sibling.children.append(node.children.pop(0))
                sibling.keys.append(node.keys.pop(0))
            else:
                sibling.children.insert(0, node.children.pop())
                sibling.keys.insert(0, node.keys.pop())


class BPlusTree(_BTreeBase):
    """B+Tree: keys only at leaves, so every search reaches leaf depth."""

    inner_match_terminates = False

    @classmethod
    def default_fill(cls) -> Tuple[float, float]:
        return (0.6, 1.0)
