"""RTNN-style radius search kernels.

Following RTNN [105], every data point becomes a sphere of the query
radius and the BVH is built over the inflated point AABBs; a query then
traverses the BVH from its center.  Inner nodes use the stock Ray-Box
test, so the *baseline* accelerated implementation already runs on an
unmodified RTA — but its leaf test (point-in-sphere) must run as an
*intersection shader* on the SIMT cores.  TTA replaces that shader with
the Point-to-Point unit, and TTA+ with the 5-µop leaf program of
Table III (*RTNN).
"""

from dataclasses import dataclass, field
from typing import Any, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.batch import contains_points_batch, point_distance_below_batch
from repro.geometry.intersect import point_distance_below
from repro.geometry.vec import Vec3
from repro.gpu.isa import AccelCall, Compute
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE

#: scalarized point-in-AABB test
_BOX_TEST_ALU = 12
#: distance test per candidate point
_DIST_TEST_ALU = 10
#: instruction cost of one ray-sphere intersection-shader invocation
SHADER_INSTS_PER_TEST = 35


class RadiusVisit(NamedTuple):
    node: Any
    kind: str    # "inner" | "leaf"
    tests: int   # candidate points tested at a leaf
    hit: bool


class RadiusQueryTrace(NamedTuple):
    hits: Tuple[int, ...]
    visits: Tuple[RadiusVisit, ...]


def radius_query_scalar(bvh, center: Vec3, radius: float) -> RadiusQueryTrace:
    """Scalar reference: one node-containment/distance test at a time."""
    visits: List[RadiusVisit] = []
    hits: List[int] = []
    stack = [bvh.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            found = 0
            for sphere in bvh.leaf_prims(node):
                if point_distance_below(center, sphere.center, radius):
                    hits.append(sphere.prim_id)
                    found += 1
            visits.append(RadiusVisit(node, "leaf", node.prim_count,
                                      found > 0))
        else:
            inside = node.bounds.contains_point(center)
            visits.append(RadiusVisit(node, "inner", 1, inside))
            if inside:
                stack.append(node.right)
                stack.append(node.left)
    return RadiusQueryTrace(tuple(sorted(hits)), tuple(visits))


def radius_query(bvh, center: Vec3, radius: float) -> RadiusQueryTrace:
    """Functional radius search over a BVH of inflated point-spheres.

    Vectorized: both sweeps a query can ever need — point-in-AABB over
    every node and Algorithm-2 distance over every primitive — run as
    two batch kernels up front, then a pure-Python DFS replays the exact
    scalar visit order against the precomputed masks.  Falls back to
    :func:`radius_query_scalar` for trees without a sphere SoA view.
    """
    soa = bvh.soa() if hasattr(bvh, "soa") else None
    if soa is None or soa.prim_kind != "sphere":
        return radius_query_scalar(bvh, center, radius)
    c = np.array((center.x, center.y, center.z), dtype=np.float64)
    inside_all = contains_points_batch(soa.lo, soa.hi, c).tolist()
    below_all = point_distance_below_batch(c, soa.centers, radius).tolist()
    nodes, prim_ids = soa.nodes, soa.prim_id_list
    left, right = soa.left_list, soa.right_list
    first, count = soa.first_list, soa.count_list

    visits: List[RadiusVisit] = []
    hits: List[int] = []
    stack = [0]
    while stack:
        i = stack.pop()
        child = left[i]
        if child < 0:
            found = 0
            for k in range(first[i], first[i] + count[i]):
                if below_all[k]:
                    hits.append(prim_ids[k])
                    found += 1
            visits.append(RadiusVisit(nodes[i], "leaf", count[i], found > 0))
        else:
            inside = inside_all[i]
            visits.append(RadiusVisit(nodes[i], "inner", 1, inside))
            if inside:
                stack.append(right[i])
                stack.append(child)
    return RadiusQueryTrace(tuple(sorted(hits)), tuple(visits))


@dataclass
class RadiusKernelArgs:
    bvh: Any
    queries: Sequence[Vec3]
    radius: float
    query_buf: int
    result_buf: int
    jobs: List[TraversalJob] = field(default_factory=list)
    results: dict = field(default_factory=dict)
    #: workload-owned recording cache for gpu/replay.py
    stream_cache: dict = None


@launch_replayable
@value_independent
def radius_baseline_kernel(tid: int, args: RadiusKernelArgs):
    """Software radius search on the SIMT cores (the CUDA comparator)."""
    trace = radius_query(args.bvh, args.queries[tid], args.radius)
    yield from prologue(args.query_buf + tid * 12, setup_alu=5)
    for visit in trace.visits:
        yield from visit_header(visit.node.address, NODE_STRIDE)
        if visit.kind == "inner":
            yield Compute(_BOX_TEST_ALU, common.TAG_INNER, kind="alu")
            yield Compute(3, common.TAG_INNER_NEXT, kind="control")
        else:
            # One tagged op per candidate point: leaves with different
            # occupancy serialize across the warp.
            for k in range(visit.tests):
                yield Compute(_DIST_TEST_ALU, common.TAG_LEAF + k,
                              kind="alu")
            yield Compute(2, common.TAG_LEAF_HIT, kind="control")
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = trace.hits


@launch_replayable
def radius_accel_kernel(tid: int, args: RadiusKernelArgs):
    yield from prologue(args.query_buf + tid * 12, setup_alu=5)
    yield Compute(2, common.TAG_SETUP + 1, kind="alu")
    hits = yield AccelCall(args.jobs[tid], tag=common.TAG_SETUP + 2)
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = hits


_FLAVORS = ("rta", "tta", "ttaplus", "ttaplus_opt")


def build_radius_jobs(bvh, queries: Sequence[Vec3], radius: float,
                      flavor: str = "rta",
                      xform_per_query: bool = True) -> List[TraversalJob]:
    """Lower radius queries into accelerator steps for each design point.

    ================  ==========================================================
    ``rta``           baseline RTNN: Ray-Box inner, intersection-shader leaf
    ``tta``           shader replaced by the Point-to-Point unit
    ``ttaplus``       naive port: µop Ray-Box inner, still shader leaf
    ``ttaplus_opt``   *RTNN: µop Ray-Box inner, µop Point-to-Point leaf
    ================  ==========================================================

    ``xform_per_query`` charges the two-level R-XFORM crossing noted under
    Table III.
    """
    if flavor not in _FLAVORS:
        raise ConfigurationError(f"unknown radius-search flavor {flavor!r}")
    inner_op = "uop:raybox" if flavor.startswith("ttaplus") else "box"
    jobs = []
    for qid, center in enumerate(queries):
        trace = radius_query(bvh, center, radius)
        steps = []
        if xform_per_query:
            steps.append(Step(-1, 0, "uop:xform"
                              if flavor.startswith("ttaplus") else "xform"))
        for visit in trace.visits:
            if visit.kind == "inner":
                steps.append(Step(visit.node.address, NODE_STRIDE, inner_op))
            elif flavor == "rta" or flavor == "ttaplus":
                steps.append(Step(visit.node.address, NODE_STRIDE, "shader",
                                  count=visit.tests,
                                  shader_insts=SHADER_INSTS_PER_TEST))
            elif flavor == "tta":
                steps.append(Step(visit.node.address, NODE_STRIDE,
                                  "point_dist", count=visit.tests))
            else:  # ttaplus_opt (*RTNN)
                steps.append(Step(visit.node.address, NODE_STRIDE,
                                  "uop:rtnn_leaf", count=visit.tests))
        jobs.append(TraversalJob(qid, steps, trace.hits))
    return jobs
