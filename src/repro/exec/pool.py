"""Worker-pool machinery: parallel map with timeout, retry, fallback.

This module is deliberately generic — it maps a *picklable top-level
function* over a list of payloads and returns one :class:`Outcome` per
payload — so the policy layer (:mod:`repro.exec.service`) and the tests
can drive it with arbitrary functions, not just simulation specs.

Semantics:

* every payload is attempted up to ``1 + retries`` times;
* a payload whose attempt runs longer than ``timeout`` seconds (measured
  from dispatch) is abandoned: the worker pool is torn down — the only
  way to stop a stuck task under ``ProcessPoolExecutor`` — rebuilt, and
  the remaining payloads are resubmitted.  Siblings lose in-flight work
  but not attempts;
* a broken pool (worker killed by the OOM killer, interpreter crash) is
  rebuilt the same way and the in-flight payload charged one attempt;
* :func:`run_serial` provides the exact same contract in-process for
  environments where ``multiprocessing`` is unavailable or undesirable.
"""

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

#: How often the dispatch loop wakes up to police timeouts (seconds).
_POLL_SECONDS = 0.05

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class Outcome:
    """Result of driving one payload to completion (or giving up)."""

    index: int
    status: str = STATUS_OK
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def run_serial(fn: Callable[[Any], Any], items: Sequence[Any],
               retries: int = 0,
               progress: Optional[Callable[[Outcome], None]] = None
               ) -> List[Outcome]:
    """In-process reference implementation of the pool contract."""
    outcomes: List[Outcome] = []
    for index, item in enumerate(items):
        attempts = 0
        started = time.monotonic()
        while True:
            attempts += 1
            try:
                value = fn(item)
            except Exception:
                if attempts <= retries:
                    continue
                outcome = Outcome(index, STATUS_ERROR, None,
                                  traceback.format_exc(limit=8), attempts,
                                  time.monotonic() - started)
            else:
                outcome = Outcome(index, STATUS_OK, value, None, attempts,
                                  time.monotonic() - started)
            break
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return outcomes


class ParallelRunner:
    """``ProcessPoolExecutor`` wrapper implementing the pool contract.

    Construction eagerly creates the executor so that environments where
    process pools cannot exist (no ``/dev/shm``, seccomp'd sandboxes)
    fail *here*, letting the caller degrade to :func:`run_serial`.
    """

    def __init__(self, jobs: int, timeout: Optional[float] = None,
                 retries: int = 1, mp_context: Optional[str] = "fork"):
        if jobs < 2:
            raise ValueError("ParallelRunner needs at least 2 jobs; "
                             "use run_serial for jobs=1")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = max(0, retries)
        self._ctx = self._resolve_context(mp_context)
        self._executor = self._make_executor()

    @staticmethod
    def _resolve_context(name: Optional[str]):
        import multiprocessing
        if name is None:
            return None
        try:
            return multiprocessing.get_context(name)
        except ValueError:
            # Platform without this start method (e.g. no fork on
            # Windows): let the executor pick its default.
            return None

    def _make_executor(self) -> ProcessPoolExecutor:
        executor = ProcessPoolExecutor(max_workers=self.jobs,
                                       mp_context=self._ctx)
        # Fail eagerly if workers cannot be spawned at all: submit a
        # no-op and wait for it, so the caller's serial fallback fires.
        probe = executor.submit(_probe)
        probe.result(timeout=60)
        return executor

    def _hard_restart(self) -> None:
        """Tear down the executor (killing workers) and build a new one."""
        executor, self._executor = self._executor, None
        try:
            executor.shutdown(wait=False, cancel_futures=True)
            # shutdown() does not stop tasks already running; terminate
            # the worker processes so a wedged simulation cannot pin a
            # CPU (private attribute, guarded — worst case the hung
            # worker dies with the parent).
            for proc in list(getattr(executor, "_processes", {}).values()):
                proc.terminate()
        except Exception:
            pass
        self._executor = self._make_executor()

    # -- the map ----------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            progress: Optional[Callable[[Outcome], None]] = None
            ) -> List[Outcome]:
        items = list(items)
        outcomes: List[Outcome] = [None] * len(items)  # type: ignore
        attempts = [0] * len(items)
        first_dispatch = [0.0] * len(items)

        def submit(index: int, charge: bool = True):
            if charge:
                attempts[index] += 1
            if not first_dispatch[index]:
                first_dispatch[index] = time.monotonic()
            future = self._executor.submit(fn, items[index])
            # Second slot: when the payload was first observed *running*
            # (None while queued) — the per-run timeout clock.
            pending[future] = [index, None]

        def recover_broken() -> None:
            # Rebuild the pool and resubmit every in-flight payload;
            # none of them failed on their own merits, so no attempt is
            # charged.
            survivors = [index for (index, _) in pending.values()]
            pending.clear()
            self._hard_restart()
            for index in survivors:
                submit(index, charge=False)

        def finish(index: int, status: str, value=None, error=None) -> None:
            outcomes[index] = Outcome(
                index, status, value, error, attempts[index],
                time.monotonic() - first_dispatch[index])
            if progress is not None:
                progress(outcomes[index])

        pending = {}
        for index in range(len(items)):
            submit(index)

        while pending:
            done, _ = wait(pending, timeout=_POLL_SECONDS,
                           return_when=FIRST_COMPLETED)
            for future in done:
                entry = pending.pop(future, None)
                if entry is None:
                    # Evicted by a recover/restart earlier in this very
                    # batch; its payload was already resubmitted.
                    continue
                index = entry[0]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    recover_broken()
                    if attempts[index] <= self.retries:
                        submit(index)
                    else:
                        finish(index, STATUS_ERROR,
                               error="worker process pool broke")
                except Exception:
                    if attempts[index] <= self.retries:
                        submit(index)
                    else:
                        finish(index, STATUS_ERROR,
                               error=traceback.format_exc(limit=8))
                else:
                    finish(index, STATUS_OK, value=value)

            if self.timeout is None or not pending:
                continue
            now = time.monotonic()
            expired = []
            for future, entry in pending.items():
                if entry[1] is None:
                    if future.running():
                        entry[1] = now
                elif now - entry[1] > self.timeout:
                    expired.append((future, entry[0]))
            if not expired:
                continue
            # Any expired task forces a pool restart; resubmit the
            # survivors (no attempt charged) and retry or fail the
            # expired ones.
            expired_futures = {future for future, _ in expired}
            survivor_indexes = [index for future, (index, _) in
                                pending.items()
                                if future not in expired_futures]
            pending.clear()
            self._hard_restart()
            for index in survivor_indexes:
                submit(index, charge=False)
            for _, index in expired:
                if attempts[index] <= self.retries:
                    submit(index)
                else:
                    finish(index, STATUS_TIMEOUT,
                           error=f"run exceeded {self.timeout:.1f}s "
                                 f"timeout ({attempts[index]} attempt(s))")
        return outcomes

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _probe() -> bool:
    return True
