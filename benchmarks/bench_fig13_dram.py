"""Fig. 13 — DRAM bandwidth utilization across platforms."""

import math

from repro.harness import experiments


def test_fig13_dram(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig13_dram(scale), rounds=1, iterations=1)
    save_table("fig13_dram", table)
    for row in table.rows:
        name, gpu, rta, tta, ttaplus = row
        # The accelerators exploit more of the DRAM bandwidth than the
        # baseline GPU (Fig. 13's core observation).
        assert tta > gpu, f"{name}: TTA util {tta} <= GPU {gpu}"
        assert ttaplus > gpu * 0.8, f"{name}: TTA+ util collapsed"
