"""The TTA+ backend: executes µop programs over OP units + crossbar.

Plugs into :class:`repro.rta.rta.RTACore` in place of the
fixed-function backend.  A step with ``op="uop:<name>"`` runs the named
program serially: every µop crosses the interconnect to its unit's
input port (queueing on contention), issues, and completes after the
Table I latency.  The chain's end-to-end time is the *intersection
latency* reported in Fig. 18 (bottom); per-unit busy fractions are
Fig. 18 (top).
"""

from typing import Dict

from repro.errors import ConfigurationError
from repro.core.ttaplus.dest_table import OpDestTable
from repro.core.ttaplus.interconnect import Crossbar
from repro.core.ttaplus.opunits import OP_UNIT_LATENCIES, OpUnitBank
from repro.core.ttaplus.programs import PROGRAMS, program_named
from repro.gpu.config import GPUConfig
from repro.sim.engine import ceil_cycles
from repro.sim.stats import LatencySampler


class _Chain:
    """In-flight state of one step's µop tests (batched driver path).

    ``pos`` walks the step's run list: ``pos < len(runs)`` is the next
    same-unit run to route+issue, ``pos == len(runs)`` is the writeback
    hand-off, ``pos == len(runs) + 1`` finalizes the test (sample
    latency, start the next test or finish the chain).
    """

    __slots__ = ("name", "runs", "pos", "pc", "tests_left", "begin",
                 "pending", "sampler")

    def __init__(self, name, runs, count, sampler):
        self.name = name
        self.runs = runs
        self.pos = 0
        self.pc = 0
        self.tests_left = count
        self.begin = None
        self.pending = []
        self.sampler = sampler


class TTAPlusBackend:
    """One TTA+ instance's compute complex."""

    def __init__(self, sim, config: GPUConfig,
                 copies: Dict[str, int] = None,
                 perfect_icnt: bool = False,
                 latency_scale: float = 1.0):
        self.sim = sim
        self.config = config
        self.is_tta = True  # programmable superset
        if copies is None:
            # Table II: 4 intersection-unit sets; TTA+ replaces each set
            # with one set of OP units (Table IV compares per-set area).
            copies = {unit: config.intersection_sets
                      for unit in OP_UNIT_LATENCIES}
        self.bank = OpUnitBank(copies=copies, latency_scale=latency_scale)
        self.crossbar = Crossbar(hop_latency=config.icnt_hop_latency,
                                 perfect=perfect_icnt,
                                 ports_per_unit=config.intersection_sets)
        self.dest_table = OpDestTable()
        for name, program in PROGRAMS.items():
            self.dest_table.load_program(name, program)
        self.test_latency: Dict[str, LatencySampler] = {}
        self.tests_run = 0
        self._runs_cache: Dict[str, list] = {}

    # -- execution ------------------------------------------------------------------
    def execute(self, now: float, op: str, count: int):
        """Run ``count`` back-to-back tests of µop program ``op``.

        Generator for ``yield from`` inside a job process.  The chain is
        computed analytically over the shared unit/port timelines, so
        contention from concurrent traversals is reflected in the result.
        """
        name = self._program_name(op)
        sampler = self.test_latency.setdefault(name, LatencySampler())
        sim = self.sim
        runs = self._runs_for(name)
        for _ in range(count):
            begin = sim.now
            pc = 0
            for unit_type, n in runs:
                # One interconnect crossing per same-unit run: consecutive
                # µops on one unit execute inside it without re-crossing
                # (§III-C: "the ADDSUB unit ... executes the first two
                # operations serially, and forwards the result").  Within
                # a run the µops work on independent lanes of the payload,
                # so they pipeline at the unit's initiation interval.  The
                # yields keep resource acquisitions in real time order so
                # concurrent chains interleave as the hardware's per-unit
                # input queues do.
                self.dest_table.next_port(name, pc)  # routing lookup
                pc += n
                arrival = self.crossbar.route(sim.now, unit_type)
                if arrival > sim.now:
                    yield ceil_cycles(arrival - sim.now)
                last_done = sim.now
                issued = []
                for _i in range(n):
                    unit, _start, done = self.bank.issue(unit_type, sim.now)
                    issued.append((unit, done))
                    last_done = max(last_done, done)
                if last_done > sim.now:
                    yield ceil_cycles(last_done - sim.now)
                for unit, _done in issued:
                    unit.complete(sim.now)
            # Final writeback hand-off to the buffers / warp registers.
            writeback = self.crossbar.route(sim.now, "writeback")
            if writeback > sim.now:
                yield ceil_cycles(writeback - sim.now)
            sampler.sample(sim.now - begin)
            self.tests_run += 1

    # -- batched-stepping interface (fast job driver) ----------------------
    def begin_chain(self, op: str, count: int) -> _Chain:
        """Start ``count`` back-to-back tests of µop program ``op``.

        Drive the returned chain with :meth:`advance_chain`; together they
        replay :meth:`execute`'s resource acquisitions with one event per
        *stage* (route + issue a whole same-unit run) instead of one
        process resume per yield.
        """
        name = self._program_name(op)
        sampler = self.test_latency.setdefault(name, LatencySampler())
        return _Chain(name, self._runs_for(name), count, sampler)

    def advance_chain(self, chain: _Chain, now):
        """Advance ``chain`` at time ``now``.

        Returns the absolute (possibly fractional) time of the next
        wake-up, or ``None`` once all tests have completed at ``now``.
        The first call may pass the fetch-ready float time; ops issue at
        their analytic arrival exactly as the generator path does.
        """
        pending = chain.pending
        if pending:
            for unit in pending:
                unit.complete(now)
            del pending[:]
        if chain.begin is None:
            chain.begin = now
        runs = chain.runs
        n_runs = len(runs)
        route = self.crossbar.route
        bank_issue = self.bank.issue
        while True:
            pos = chain.pos
            if pos < n_runs:
                unit_type, n = runs[pos]
                self.dest_table.next_port(chain.name, chain.pc)
                chain.pc += n
                chain.pos = pos + 1
                arrival = route(now, unit_type)
                last_done = arrival
                for _ in range(n):
                    unit, _start, done = bank_issue(unit_type, arrival)
                    pending.append(unit)
                    if done > last_done:
                        last_done = done
                if last_done > now:
                    return last_done
                for unit in pending:  # zero-latency edge (perfect studies)
                    unit.complete(now)
                del pending[:]
            elif pos == n_runs:
                writeback = route(now, "writeback")
                chain.pos = pos + 1
                if writeback > now:
                    return writeback
            else:
                chain.sampler.sample(now - chain.begin)
                self.tests_run += 1
                chain.tests_left -= 1
                if chain.tests_left == 0:
                    return None
                chain.begin = now
                chain.pos = 0
                chain.pc = 0

    def _runs_for(self, name: str) -> list:
        runs = self._runs_cache.get(name)
        if runs is None:
            runs = self._runs_cache[name] = self._runs(program_named(name))
        return runs

    @staticmethod
    def _runs(program):
        """Collapse a µop list into (unit, run_length) pairs."""
        runs = []
        for uop in program.uops:
            if runs and runs[-1][0] == uop.unit:
                runs[-1][1] += 1
            else:
                runs.append([uop.unit, 1])
        return [(u, n) for u, n in runs]

    @staticmethod
    def _program_name(op: str) -> str:
        if not op.startswith("uop:"):
            raise ConfigurationError(
                f"TTA+ executes µop programs; got step op {op!r} "
                "(lower fixed-function steps with a ttaplus job builder)"
            )
        return op[len("uop:"):]

    # -- statistics --------------------------------------------------------------
    def snapshot(self, end: float) -> dict:
        out = {"uop_tests_run": self.tests_run}
        for unit_type, stats in self.bank.snapshot(end).items():
            out[f"op_{unit_type}_ops"] = stats["ops"]
            out[f"op_{unit_type}_util"] = stats["utilization"]
            out[f"op_{unit_type}_busy_cycles"] = stats["busy_cycles"]
            out[f"op_{unit_type}_occupancy_peak"] = stats["occupancy_peak"]
        for name, sampler in self.test_latency.items():
            out[f"test_{name}_latency_mean"] = sampler.mean
            out[f"test_{name}_count"] = sampler.count
        out.update(self.crossbar.snapshot(end))
        return out


def make_ttaplus_factory(copies: Dict[str, int] = None,
                         perfect_icnt: bool = False,
                         latency_scale: float = 1.0,
                         perfect_node_fetch: bool = False,
                         prefetch_depth: int = 0):
    """Factory attaching a TTA+ to every SM (use with :class:`repro.gpu.GPU`).

    ``perfect_icnt`` and ``perfect_node_fetch`` support the Fig. 17
    limit study (zero-cost interconnect / zero-latency node fetches);
    ``copies`` overrides the per-unit-type replication (Table II default:
    one per intersection set); ``prefetch_depth`` enables the treelet
    prefetcher [16].
    """
    from repro.rta.rta import RTACore

    def factory(sm):
        backend = TTAPlusBackend(sm.sim, sm.config, copies=copies,
                                 perfect_icnt=perfect_icnt,
                                 latency_scale=latency_scale)
        core = RTACore(sm, backend, prefetch_depth=prefetch_depth)
        if perfect_node_fetch:
            core.mem.fetch = lambda now, address, size: now
        return core

    # Value identity for launch-level replay (gpu/replay.py): two
    # factories built from equal parameters configure identical cores.
    factory.replay_fingerprint = (
        "ttaplus",
        tuple(sorted(copies.items())) if copies else (),
        perfect_icnt, latency_scale, perfect_node_fetch, prefetch_depth,
    )
    return factory
