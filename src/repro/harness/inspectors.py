"""Workload inspection: tree-shape and traversal statistics.

Answers the questions a user asks before trusting a data point: how
deep is the tree, how full are its nodes, how many nodes does a query
visit, and how divergent would a warp of those queries be.  Used by the
examples and handy when calibrating new workloads.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass
class TreeShape:
    """Structural statistics of any tree exposing ``nodes()``."""

    n_nodes: int
    n_leaves: int
    height: int
    mean_fanout: float
    fill_histogram: Dict[int, int]

    def format(self) -> str:
        fills = ", ".join(f"{w}:{c}" for w, c in
                          sorted(self.fill_histogram.items()))
        return (f"nodes={self.n_nodes} leaves={self.n_leaves} "
                f"height={self.height} mean_fanout={self.mean_fanout:.2f} "
                f"fill={{{fills}}}")


def tree_shape(tree) -> TreeShape:
    """Compute :class:`TreeShape` for B-Trees, R-Trees, BVHs, octrees..."""
    nodes = tree.nodes()
    n_leaves = 0
    fanouts: List[int] = []
    fill: Dict[int, int] = {}
    for node in nodes:
        children = [c for c in (getattr(node, "children", None) or [])
                    if c is not None]
        if children:
            fanouts.append(len(children))
            fill[len(children)] = fill.get(len(children), 0) + 1
        else:
            n_leaves += 1
    height = tree.height() if hasattr(tree, "height") else tree.depth()
    mean_fanout = sum(fanouts) / len(fanouts) if fanouts else 0.0
    return TreeShape(len(nodes), n_leaves, height, mean_fanout, fill)


@dataclass
class TraversalProfile:
    """Distribution of per-query traversal work."""

    n_queries: int
    mean_visits: float
    min_visits: int
    max_visits: int
    p95_visits: float
    #: expected warp efficiency if 32 consecutive queries shared a warp
    #: and serialized on the longest traversal
    warp_tail_efficiency: float

    def format(self) -> str:
        return (f"queries={self.n_queries} visits: mean={self.mean_visits:.1f} "
                f"min={self.min_visits} max={self.max_visits} "
                f"p95={self.p95_visits:.0f} "
                f"warp_tail_eff={self.warp_tail_efficiency:.2f}")


def traversal_profile(visit_counts: Sequence[int],
                      warp_size: int = 32) -> TraversalProfile:
    """Summarize per-query visit counts (from jobs or traces)."""
    if not visit_counts:
        raise ValueError("need at least one traversal")
    counts = sorted(visit_counts)
    n = len(counts)
    p95 = counts[min(n - 1, math.ceil(0.95 * n) - 1)]
    # Tail effect: each warp pays for its slowest lane.
    total, padded = 0, 0
    for first in range(0, n, warp_size):
        warp = visit_counts[first:first + warp_size]
        total += sum(warp)
        padded += max(warp) * len(warp)
    return TraversalProfile(
        n_queries=n,
        mean_visits=sum(counts) / n,
        min_visits=counts[0],
        max_visits=counts[-1],
        p95_visits=float(p95),
        warp_tail_efficiency=total / padded if padded else 1.0,
    )


def job_visit_counts(jobs) -> List[int]:
    """Visit counts from a list of accelerator jobs."""
    return [len(job.steps) for job in jobs]
