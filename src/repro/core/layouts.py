"""Programmer-defined data layouts (``DecodeR`` / ``DecodeI`` / ``DecodeL``).

Listing 1 of the paper configures the TTA front end with byte-offset
lists such as ``internalNodeLayout[4] = [12, 12, 4, 4]``.  A
:class:`DataLayout` is the same declaration with optional field names
and types, plus a binary codec (pack/unpack) so tests can verify that
the operation arbiter's node decoder round-trips real bytes.

The warp buffer grants 16 x 32-bit registers per ray and per node
(Fig. 7), so layouts are capped at 64 bytes.
"""

import struct
from typing import Any, Dict, List, NamedTuple, Sequence, Tuple, Union

from repro.errors import LayoutError

WARP_BUFFER_ENTRY_BYTES = 64  # 16 x 32-bit registers (Fig. 7)

_TYPE_FOR_SIZE = {4: "float", 12: "vec3"}
_SIZE_FOR_TYPE = {"float": 4, "u32": 4, "vec3": 12}


class Field(NamedTuple):
    """One named field of a ray or node layout."""

    name: str
    type: str       # "float" | "u32" | "vec3"
    offset: int     # byte offset within the entry

    @property
    def size(self) -> int:
        return _SIZE_FOR_TYPE[self.type]


class DataLayout:
    """An ordered set of typed fields packed into a warp-buffer entry."""

    def __init__(self, fields: Sequence[Tuple[str, str]], name: str = "layout"):
        self.name = name
        self.fields: List[Field] = []
        offset = 0
        seen = set()
        for fname, ftype in fields:
            if ftype not in _SIZE_FOR_TYPE:
                raise LayoutError(f"{name}: unknown field type {ftype!r}")
            if fname in seen:
                raise LayoutError(f"{name}: duplicate field {fname!r}")
            seen.add(fname)
            self.fields.append(Field(fname, ftype, offset))
            offset += _SIZE_FOR_TYPE[ftype]
        self.size = offset
        if self.size > WARP_BUFFER_ENTRY_BYTES:
            raise LayoutError(
                f"{name}: {self.size}B exceeds the {WARP_BUFFER_ENTRY_BYTES}B "
                "warp buffer entry (16 x 32-bit registers)"
            )
        if not self.fields:
            raise LayoutError(f"{name}: needs at least one field")

    @classmethod
    def from_sizes(cls, sizes: Sequence[int], name: str = "layout") -> "DataLayout":
        """Listing 1 style: a bare list of byte sizes (4 or 12)."""
        fields = []
        for i, size in enumerate(sizes):
            if size not in _TYPE_FOR_SIZE:
                raise LayoutError(
                    f"{name}: field size must be 4 or 12 bytes, got {size}"
                )
            fields.append((f"f{i}", _TYPE_FOR_SIZE[size]))
        return cls(fields, name=name)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise LayoutError(f"{self.name}: no field named {name!r}")

    def field_at(self, offset: int) -> Field:
        for f in self.fields:
            if f.offset == offset:
                return f
        raise LayoutError(f"{self.name}: no field at offset {offset}")

    # -- binary codec (what the node decoder implements in hardware) -------------
    def pack(self, values: Dict[str, Any]) -> bytes:
        out = bytearray()
        for f in self.fields:
            value = values.get(f.name)
            if value is None:
                raise LayoutError(f"{self.name}: missing value for {f.name!r}")
            if f.type == "float":
                out += struct.pack("<f", float(value))
            elif f.type == "u32":
                out += struct.pack("<I", int(value))
            else:  # vec3
                x, y, z = value
                out += struct.pack("<fff", float(x), float(y), float(z))
        return bytes(out)

    def unpack(self, data: Union[bytes, bytearray]) -> Dict[str, Any]:
        if len(data) < self.size:
            raise LayoutError(
                f"{self.name}: need {self.size} bytes, got {len(data)}"
            )
        values: Dict[str, Any] = {}
        for f in self.fields:
            chunk = data[f.offset:f.offset + f.size]
            if f.type == "float":
                values[f.name] = struct.unpack("<f", chunk)[0]
            elif f.type == "u32":
                values[f.name] = struct.unpack("<I", chunk)[0]
            else:
                values[f.name] = tuple(struct.unpack("<fff", chunk))
        return values

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.type}@{f.offset}" for f in self.fields)
        return f"DataLayout({self.name}: {inner})"


# -- stock layouts used by the evaluated applications ------------------------------
def ray_tracing_ray_layout() -> DataLayout:
    """Listing 1's ray layout: origin, dir, tmin, tmax + scratch."""
    return DataLayout(
        [("origin", "vec3"), ("dir", "vec3"), ("tmin", "float"),
         ("tmax", "float"), ("diff1", "vec3"), ("diff2", "vec3"),
         ("t_near", "float"), ("t_far", "float")],
        name="rt_ray",
    )


def btree_query_layout() -> DataLayout:
    """A B-Tree 'ray': the query key plus traversal scratch."""
    return DataLayout(
        [("query", "float"), ("next_child", "u32"), ("found", "u32"),
         ("depth", "u32")],
        name="btree_query",
    )


def btree_node_layout() -> DataLayout:
    """9 fence keys + first-child base address + child count."""
    fields = [(f"key{i}", "float") for i in range(9)]
    fields += [("first_child", "u32"), ("n_children", "u32"),
               ("flags", "u32")]
    return DataLayout(fields, name="btree_node")


def nbody_node_layout() -> DataLayout:
    """Barnes-Hut cell: center of mass, mass, size, children base."""
    return DataLayout(
        [("com", "vec3"), ("mass", "float"), ("size", "float"),
         ("first_child", "u32"), ("count", "u32"), ("flags", "u32")],
        name="bh_node",
    )
