"""Unit and property tests for the memory system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LayoutError
from repro.gpu.config import GPUConfig
from repro.memsys import AddressSpace, Cache, MemoryHierarchy, coalesce_sectors
from repro.sim import Simulator
from repro.trees import BTree


class TestCache:
    def test_miss_then_hit_after_fill(self):
        c = Cache("t", 1024, 2, line_size=64)
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)
        assert c.lookup(63)      # same line
        assert not c.lookup(64)  # next line

    def test_lru_eviction_within_set(self):
        c = Cache("t", 2 * 64, 2, line_size=64)  # 1 set, 2 ways
        c.fill(0)
        c.fill(64)
        c.lookup(0)          # 0 is now MRU
        c.fill(128)          # evicts 64
        assert c.lookup(0)
        assert not c.lookup(64)
        assert c.lookup(128)

    def test_fully_associative(self):
        c = Cache("t", 1024, -1, line_size=64)
        assert c.n_sets == 1
        assert c.assoc == 16

    def test_sets_indexed_by_line(self):
        c = Cache("t", 4096, 1, line_size=64)  # direct mapped, 64 sets
        c.fill(0)
        c.fill(64 * 64)  # maps to same set 0 -> evicts
        assert not c.lookup(0)

    def test_hit_rate(self):
        c = Cache("t", 1024, -1, line_size=64)
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.hit_rate == pytest.approx(0.5)
        assert c.misses == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("t", 0, 2)
        with pytest.raises(ConfigurationError):
            Cache("t", 64, 2, line_size=128)


class TestCoalescer:
    def test_same_sector_merges(self):
        sectors = coalesce_sectors([(0, 4), (8, 4), (28, 4)])
        assert sectors == [0]

    def test_spanning_request_covers_two_sectors(self):
        assert coalesce_sectors([(30, 4)]) == [0, 32]

    def test_divergent_lanes_worst_case(self):
        reqs = [(i * 64, 4) for i in range(32)]
        assert len(coalesce_sectors(reqs)) == 32

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            coalesce_sectors([(0, 0)])

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10**6),
                              st.integers(min_value=1, max_value=256)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_cover_minimal_and_complete(self, reqs):
        sectors = set(coalesce_sectors(reqs))
        covered = set()
        for base in sectors:
            assert base % 32 == 0
            covered.update(range(base, base + 32))
        touched = set()
        for addr, size in reqs:
            touched.update(range(addr, addr + size))
        # complete: every requested byte covered
        assert touched <= covered
        # minimal: every sector contains a requested byte
        for base in sectors:
            assert any(b in touched for b in range(base, base + 32))


def small_config(**kw):
    return GPUConfig(l1_size=4 * 128, l2_size=16 * 16 * 128,
                     l2_latency=100, dram_latency=200,
                     dram_bytes_per_cycle=32.0).with_overrides(**kw)


class TestHierarchy:
    def test_l1_hit_is_fast(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        l1 = h.make_l1(0)
        first = h.access_sectors(0, l1, [0])
        assert first > 200  # went to DRAM
        again = h.access_sectors(first, l1, [0])
        assert again == first + h.config.l1_latency

    def test_l2_hit_avoids_dram(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        l1a, l1b = h.make_l1(0), h.make_l1(1)
        t1 = h.access_sectors(0, l1a, [0])
        dram_before = h.dram.requests
        t2 = h.access_sectors(t1, l1b, [0])  # other SM: L1 miss, L2 hit
        assert h.dram.requests == dram_before
        assert t2 - t1 < h.config.dram_latency

    def test_mshr_merge_piggybacks(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        l1a, l1b = h.make_l1(0), h.make_l1(1)
        t1 = h.access_sectors(0, l1a, [0])
        t2 = h.access_sectors(1, l1b, [0])  # in flight: merge
        assert h.mshr_merges == 1
        assert t2 == t1
        assert h.dram.requests == 1

    def test_dram_bandwidth_contention(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        # 64 distinct lines at once: DRAM serializes at 128B / 32Bpc = 4 cyc
        addrs = [i * 128 for i in range(64)]
        done = h.access_sectors(0, None, addrs)
        first = h.access_sectors(0, None, [addrs[0]])
        assert done >= 64 * 4  # bandwidth-limited tail

    def test_utilization_reported(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        h.access_sectors(0, None, [i * 128 for i in range(16)])
        stats = h.stats(end=1000)
        assert 0 < stats["dram_utilization"] <= 1
        assert stats["dram_bytes"] == 16 * 128

    def test_no_l1_path_allowed(self):
        sim = Simulator()
        h = MemoryHierarchy(sim, small_config())
        t = h.access_sectors(0, None, [0])
        assert t > 0


class TestAddressSpace:
    def test_alloc_alignment(self):
        space = AddressSpace()
        a = space.alloc(100, align=64)
        b = space.alloc(10, align=256)
        assert a % 64 == 0
        assert b % 256 == 0
        assert b >= a + 100

    def test_bad_alloc_rejected(self):
        space = AddressSpace()
        with pytest.raises(LayoutError):
            space.alloc(0)
        with pytest.raises(LayoutError):
            space.alloc(8, align=3)

    def test_place_tree_and_lookup(self):
        space = AddressSpace()
        tree = BTree.bulk_load(list(range(100)))
        image = space.place_tree(tree.nodes())
        assert space.node_at(image.address_of(tree.root)) is tree.root
        assert space.node_at(0) is None

    def test_two_trees_disjoint(self):
        space = AddressSpace()
        t1 = BTree.bulk_load(list(range(100)))
        t2 = BTree.bulk_load(list(range(200, 300)))
        i1 = space.place_tree(t1.nodes())
        i2 = space.place_tree(t2.nodes())
        assert i1.end <= i2.base
