"""Tests for the workload generators and their golden references."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry.sphere import ray_sphere_intersect
from repro.geometry.triangle import ray_triangle_intersect
from repro.workloads import (
    LUMIBENCH_SUITE,
    make_btree_workload,
    make_lumibench_workload,
    make_nbody_workload,
    make_rtnn_workload,
    make_wknd_workload,
    synth_lidar_cloud,
)
from repro.workloads.lumibench import spec_named
from repro.workloads.scenes import (
    Camera,
    make_cornell_scene,
    make_shell_scene,
    make_soup_scene,
    make_thin_strips_scene,
)
from repro.geometry.vec import Vec3


class TestBTreeWorkload:
    def test_golden_matches_membership(self):
        wl = make_btree_workload("btree", n_keys=1000, n_queries=500, seed=1)
        present = set(wl.tree.keys_in_order())
        assert wl.golden == [q in present for q in wl.queries]

    def test_hit_fraction_respected(self):
        wl = make_btree_workload("btree", n_keys=2000, n_queries=2000,
                                 seed=2, hit_fraction=0.75)
        hits = sum(wl.golden)
        assert 0.65 < hits / 2000 < 0.85

    def test_bad_variant(self):
        with pytest.raises(ConfigurationError):
            make_btree_workload("rtree")

    def test_buffers_do_not_overlap_tree(self):
        wl = make_btree_workload("bplus", n_keys=500, n_queries=100)
        assert wl.query_buf >= wl.image.end
        assert wl.result_buf >= wl.query_buf + 4 * 100


class TestNBodyWorkload:
    def test_bodies_are_morton_sorted_for_coherence(self):
        wl = make_nbody_workload(n_bodies=256, dims=2, seed=3)
        # Adjacent bodies should be spatially close on average: compare
        # mean adjacent distance against mean random-pair distance.
        bodies = wl.tree.bodies
        adjacent = [
            (bodies[i].position - bodies[i + 1].position).length()
            for i in range(len(bodies) - 1)
        ]
        import random
        rng = random.Random(0)
        random_pairs = [
            (bodies[rng.randrange(256)].position
             - bodies[rng.randrange(256)].position).length()
            for _ in range(255)
        ]
        assert (sum(adjacent) / len(adjacent)
                < 0.5 * sum(random_pairs) / len(random_pairs))

    def test_golden_sample_matches_direct(self):
        wl = make_nbody_workload(n_bodies=128, dims=3, seed=4)
        sample = wl.golden_sample(4)
        for body, expected in zip(wl.tree.bodies[:4], sample):
            assert (wl.tree.direct_force_on(body) - expected).length() == 0

    def test_bad_dims(self):
        with pytest.raises(ConfigurationError):
            make_nbody_workload(n_bodies=8, dims=1)


class TestPointCloud:
    def test_size_and_determinism(self):
        a = synth_lidar_cloud(1024, seed=5)
        b = synth_lidar_cloud(1024, seed=5)
        c = synth_lidar_cloud(1024, seed=6)
        assert len(a) == 1024
        assert a == b
        assert a != c

    def test_structure_ground_heavy(self):
        cloud = synth_lidar_cloud(4096, seed=7)
        near_ground = sum(1 for p in cloud if abs(p.z) < 0.3)
        assert near_ground > 0.4 * len(cloud)

    def test_range_bounded(self):
        cloud = synth_lidar_cloud(1024, seed=8, max_range=30.0)
        for p in cloud:
            assert math.hypot(p.x, p.y) <= 30.0 * 1.01

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            synth_lidar_cloud(4)


class TestRTNNWorkload:
    def test_trace_hits_equal_golden(self):
        wl = make_rtnn_workload(n_points=1024, n_queries=64, radius=1.2,
                                seed=9)
        for q in wl.queries[:16]:
            assert wl.trace(q).hits == wl.golden(q)

    def test_queries_are_cloud_points(self):
        wl = make_rtnn_workload(n_points=256, n_queries=32, seed=10)
        point_set = {(p.x, p.y, p.z) for p in wl.points}
        for q in wl.queries:
            assert (q.x, q.y, q.z) in point_set

    def test_every_query_finds_itself(self):
        wl = make_rtnn_workload(n_points=512, n_queries=32, radius=0.5,
                                seed=11)
        for q in wl.queries[:8]:
            assert len(wl.golden(q)) >= 1  # at least the point itself


class TestScenes:
    @pytest.mark.parametrize("builder", [
        make_cornell_scene, make_soup_scene, make_shell_scene,
        make_thin_strips_scene,
    ])
    def test_scene_builders_produce_unique_ids(self, builder):
        tris = builder()
        assert len(tris) > 50
        ids = [t.prim_id for t in tris]
        assert ids == list(range(len(tris)))

    def test_camera_ray_count_and_normalization(self):
        cam = Camera(Vec3(0, 0, -10), Vec3(0, 0, 0))
        rays = cam.rays(8, 6)
        assert len(rays) == 48
        for ray in rays:
            assert ray.direction.length() == pytest.approx(1.0)

    def test_camera_bad_resolution(self):
        cam = Camera(Vec3(0, 0, -10), Vec3(0, 0, 0))
        with pytest.raises(ConfigurationError):
            cam.rays(0, 5)


class TestLumiBench:
    def test_suite_has_representative_kinds(self):
        kinds = {spec.kind for spec in LUMIBENCH_SUITE}
        assert kinds == {"pt", "ao", "sh", "refl", "alpha"}

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            spec_named("TEAPOT")

    def test_workload_traces_nonempty(self):
        wl = make_lumibench_workload("CORNELL_PT", width=4, height=4)
        assert wl.n_rays == 16
        assert wl.total_visits() > 16
        # Path tracing: threads that hit generate bounce traces.
        assert any(len(traces) > 1 for traces in wl.visits_per_thread)

    def test_ship_has_sato_variant_others_do_not(self):
        ship = make_lumibench_workload("SHIP_SH", width=4, height=4)
        assert ship.sato_visits_per_thread is not None
        cornell = make_lumibench_workload("CORNELL_PT", width=4, height=4)
        with pytest.raises(ConfigurationError):
            cornell.kernel_args(flavor="ttaplus", sato=True)

    def test_shadow_workload_has_two_traces_on_hits(self):
        wl = make_lumibench_workload("BUNNY_SH", width=6, height=6)
        for tid, traces in enumerate(wl.visits_per_thread):
            assert len(traces) in (1, 2)

    def test_sato_traces_functionally_consistent(self):
        """SATO reorders traversal; occlusion answers must not change."""
        wl = make_lumibench_workload("SHIP_SH", width=6, height=6)
        for normal, sato in zip(wl.visits_per_thread,
                                wl.sato_visits_per_thread):
            assert len(normal) == len(sato)  # same #rays per thread
            if len(normal) == 2:
                hit_normal = any(v.hit for v in normal[1]
                                 if v.kind == "leaf")
                hit_sato = any(v.hit for v in sato[1] if v.kind == "leaf")
                assert hit_normal == hit_sato


class TestWKND:
    def test_scene_has_ground_sphere(self):
        from repro.workloads.wknd import make_wknd_scene
        spheres = make_wknd_scene(50)
        assert spheres[0].radius == 1000.0
        assert len(spheres) == 50

    def test_primary_rays_mostly_hit(self):
        wl = make_wknd_workload(width=8, height=8, n_spheres=100, bounces=1)
        # Camera aims at the field above the ground sphere: everything
        # below the horizon hits at least the ground.
        hit_threads = sum(1 for traces in wl.visits_per_thread
                          if any(v.hit for v in traces[0]))
        assert hit_threads > wl.n_rays * 0.5

    def test_bounce_traces_bounded_by_depth(self):
        wl = make_wknd_workload(width=6, height=6, n_spheres=60, bounces=2)
        for traces in wl.visits_per_thread:
            assert 1 <= len(traces) <= 3


@given(st.integers(min_value=64, max_value=512),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_property_rtnn_radius_search_correct(n_points, seed):
    wl = make_rtnn_workload(n_points=n_points, n_queries=4, radius=1.0,
                            seed=seed)
    for q in wl.queries:
        assert wl.trace(q).hits == wl.golden(q)
