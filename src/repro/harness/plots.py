"""Dependency-free chart rendering for experiment tables.

The paper's artifact ships matplotlib scripts (``plot_speedup.py``,
``plot_dram.py``, ...); this module is their offline-friendly
equivalent: horizontal bar charts rendered as text, one bar per table
row, grouped by an optional category column.  Used by
``python -m repro run --plot`` and directly importable.
"""

from typing import List, Optional, Sequence

from repro.harness.results import Table

BAR_WIDTH = 42
FULL = "█"
PARTIAL = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def _bar(value: float, max_value: float, width: int = BAR_WIDTH) -> str:
    if max_value <= 0 or value <= 0:
        return ""
    fraction = min(1.0, value / max_value)
    eighths = int(round(fraction * width * 8))
    full, rem = divmod(eighths, 8)
    return FULL * full + PARTIAL[rem]


def bar_chart(table: Table, value_column: str,
              label_columns: Optional[Sequence[str]] = None,
              reference: Optional[float] = None,
              title: Optional[str] = None) -> str:
    """Render one numeric column of a table as a horizontal bar chart.

    ``reference`` draws a marker line (e.g. 1.0 for speedup charts) as a
    ``|`` in each bar's track.  Non-numeric/NaN rows are skipped.
    """
    value_idx = table.headers.index(value_column)
    if label_columns is None:
        label_columns = table.headers[:value_idx]
    label_idx = [table.headers.index(c) for c in label_columns]

    rows = []
    for row in table.rows:
        value = row[value_idx]
        if not isinstance(value, (int, float)) or value != value:
            continue
        label = " ".join(str(row[i]) for i in label_idx).strip()
        rows.append((label, float(value)))
    if not rows:
        return f"{title or table.title}\n(no numeric data)"

    max_value = max(v for _l, v in rows)
    if reference is not None:
        max_value = max(max_value, reference)
    label_width = max(len(l) for l, _v in rows)
    ref_pos = (int(round(reference / max_value * BAR_WIDTH))
               if reference else None)

    out = [title or f"{table.title} — {value_column}"]
    out.append("-" * len(out[0]))
    for label, value in rows:
        bar = _bar(value, max_value)
        track = list(bar.ljust(BAR_WIDTH))
        if ref_pos is not None and 0 <= ref_pos < BAR_WIDTH \
                and track[ref_pos] == " ":
            track[ref_pos] = "|"
        out.append(f"{label.ljust(label_width)}  {''.join(track)} "
                   f"{value:.3g}")
    if reference is not None:
        out.append(f"{''.ljust(label_width)}  ('|' marks {reference:g})")
    return "\n".join(out)


def auto_plots(name: str, table: Table) -> List[str]:
    """Figure-appropriate charts for each known experiment table."""
    charts: List[str] = []

    def has(col):
        return col in table.headers

    if name == "fig12" and has("tta"):
        charts.append(bar_chart(table, "tta",
                                label_columns=["workload", "config"],
                                reference=1.0,
                                title="Fig. 12 — TTA speedup over baseline"))
        charts.append(bar_chart(table, "ttaplus",
                                label_columns=["workload", "config"],
                                reference=1.0,
                                title="Fig. 12 — TTA+ speedup over baseline"))
    elif name == "fig13":
        for column in ("gpu", "tta", "ttaplus"):
            if has(column):
                charts.append(bar_chart(
                    table, column, label_columns=["workload"],
                    title=f"Fig. 13 — DRAM utilization ({column})"))
    elif name == "fig16" and has("ttaplus/rta"):
        charts.append(bar_chart(table, "ttaplus/rta",
                                label_columns=["workload"], reference=1.0))
    elif name == "fig19" and has("total"):
        charts.append(bar_chart(table, "total",
                                label_columns=["workload", "platform"],
                                reference=1.0,
                                title="Fig. 19 — energy vs BASE"))
    elif name == "fig20" and has("total_vs_base"):
        charts.append(bar_chart(table, "total_vs_base",
                                label_columns=["workload", "platform"],
                                title="Fig. 20 — instructions vs BASE"))
    elif name == "fig14" and has("speedup_vs_gpu"):
        charts.append(bar_chart(table, "speedup_vs_gpu",
                                label_columns=["variant", "knob", "value"],
                                reference=1.0))
    else:
        numeric = [h for h in table.headers
                   if any(isinstance(r[table.headers.index(h)], (int, float))
                          for r in table.rows)]
        if len(numeric) >= 1 and len(table.rows) >= 2:
            charts.append(bar_chart(table, numeric[-1]))
    return charts
