"""B-Tree / B*Tree / B+Tree search kernels (Algorithm 1).

``btree_baseline_kernel`` is the CUDA-style while-loop search executed
on the SIMT cores.  ``btree_accel_kernel`` offloads the whole traversal
with one ``traverseTreeTTA`` instruction.  ``build_btree_jobs`` lowers
the functional search paths into accelerator step sequences:

* TTA — every node (inner and leaf) is one 9-wide Query-Key comparison
  on the modified Ray-Box unit;
* TTA+ — inner nodes run the 12-µop program and leaves the 3-µop
  program of Table III.
"""

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import ConfigurationError
from repro.gpu.isa import AccelCall, Compute, Load
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.layout import NODE_STRIDE

#: instructions per key-scan iteration (load key, compare, two branches)
_PER_KEY_ALU = 6
#: child-pointer arithmetic after routing
_CHILD_SELECT_ALU = 5
#: found/miss bookkeeping on a leaf
_LEAF_EXIT_CONTROL = 3


@dataclass
class BTreeKernelArgs:
    """Everything one launch of the B-Tree search kernel needs."""

    tree: Any
    queries: Sequence[int]
    query_buf: int
    result_buf: int
    jobs: List[TraversalJob] = field(default_factory=list)
    results: dict = field(default_factory=dict)
    #: workload-owned recording cache for gpu/replay.py (None = record
    #: nothing; the baseline kernel is value-independent, so replay is
    #: byte-identical to generating)
    stream_cache: dict = None


def _keys_scanned(node, query: int) -> int:
    """How many keys Algorithm 1's loop touches before routing/exiting."""
    for i, key in enumerate(node.keys):
        if query <= key:
            return i + 1
    return max(1, len(node.keys))


@launch_replayable
@value_independent
def btree_baseline_kernel(tid: int, args: BTreeKernelArgs):
    """One thread = one query, searched with the software while-loop."""
    query = args.queries[tid]
    trace = args.tree.search(query)
    yield from prologue(args.query_buf + tid * 4)
    for node in trace.path:
        yield from visit_header(node.address, NODE_STRIDE)
        # The key and child-pointer arrays are separate structures in
        # CUDA B-Tree layouts: a second divergent load per visit.
        yield Load(node.address + NODE_STRIDE // 2, NODE_STRIDE // 2,
                   common.TAG_LOAD_NODE + 1)
        scanned = _keys_scanned(node, query)
        # Algorithm 1's key loop breaks at a data-dependent iteration:
        # one tagged compare op plus one branch-resolution op per key, so
        # warps serialize on the longest scan while shorter lanes idle
        # (the SIMT divergence the paper measures in Fig. 1).
        base = common.TAG_LEAF if node.is_leaf else common.TAG_INNER
        for k in range(scanned):
            yield Compute(_PER_KEY_ALU, base + k, kind="alu")
            yield Compute(2, base + k, kind="control")
        if node.is_leaf:
            yield Compute(_LEAF_EXIT_CONTROL, common.TAG_LEAF_HIT,
                          kind="control")
        else:
            yield Compute(_CHILD_SELECT_ALU, common.TAG_INNER_NEXT,
                          kind="alu")
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = trace.found


@launch_replayable
def btree_accel_kernel(tid: int, args: BTreeKernelArgs):
    """Setup + one traverseTreeTTA + writeback (the TTA programming model)."""
    yield from prologue(args.query_buf + tid * 4)
    yield Compute(2, common.TAG_SETUP + 1, kind="alu")  # pack ray payload
    found = yield AccelCall(args.jobs[tid], tag=common.TAG_SETUP + 2)
    yield from epilogue(args.result_buf + tid * 4)
    args.results[tid] = found


def build_btree_jobs(tree, queries: Sequence[int],
                     flavor: str = "tta") -> List[TraversalJob]:
    """Lower each query's search path into accelerator steps."""
    if flavor not in ("tta", "ttaplus"):
        raise ConfigurationError(
            f"B-Tree search needs Query-Key support; baseline RTAs cannot "
            f"run it (got flavor {flavor!r})"
        )
    jobs = []
    for qid, query in enumerate(queries):
        trace = tree.search(query)
        steps = []
        for node in trace.path:
            if flavor == "tta":
                op = "query_key"
            else:
                op = "uop:btree_leaf" if node.is_leaf else "uop:btree_inner"
            steps.append(Step(node.address, NODE_STRIDE, op))
        jobs.append(TraversalJob(qid, steps, trace.found))
    return jobs
