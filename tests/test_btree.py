"""Unit and property tests for the B-Tree family."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.trees import BPlusTree, BStarTree, BTree

ALL_VARIANTS = [BTree, BStarTree, BPlusTree]


@pytest.fixture(params=ALL_VARIANTS, ids=lambda c: c.__name__)
def variant(request):
    return request.param


class TestInsertSearch:
    def test_empty_tree_finds_nothing(self, variant):
        tree = variant()
        result = tree.search(42)
        assert not result.found
        assert len(result.path) == 1

    def test_insert_then_search_all(self, variant):
        tree = variant()
        keys = random.Random(1).sample(range(10_000), 500)
        for k in keys:
            tree.insert(k)
        tree.check_invariants()
        for k in keys:
            assert tree.search(k).found, f"key {k} lost"
        for k in (-1, 10_001, 5_000_000):
            assert not tree.search(k).found

    def test_duplicate_insert_rejected(self, variant):
        tree = variant()
        tree.insert(5)
        with pytest.raises(KeyError):
            tree.insert(5)

    def test_values_retrievable(self, variant):
        tree = variant()
        for k in range(100):
            tree.insert(k, value=f"v{k}")
        if variant.inner_match_terminates:
            # Inner matches return the key itself; check a leaf-resident key.
            res = tree.search(0)
            assert res.found
        else:
            for k in (0, 50, 99):
                assert tree.search(k).value == f"v{k}"

    def test_sorted_order_maintained(self, variant):
        tree = variant()
        keys = random.Random(2).sample(range(100_000), 1000)
        for k in keys:
            tree.insert(k)
        assert tree.keys_in_order() == sorted(keys)

    def test_order_too_small_rejected(self, variant):
        with pytest.raises(ConfigurationError):
            variant(order=2)


class TestBulkLoad:
    def test_bulk_load_equals_insert_search(self, variant):
        keys = sorted(random.Random(3).sample(range(1_000_000), 5000))
        tree = variant.bulk_load(keys)
        tree.check_invariants()
        rng = random.Random(4)
        for k in rng.sample(keys, 200):
            assert tree.search(k).found
        present = set(keys)
        misses = 0
        while misses < 100:
            k = rng.randrange(1_000_000)
            if k not in present:
                misses += 1
                assert not tree.search(k).found

    def test_bulk_load_rejects_duplicates(self, variant):
        with pytest.raises(ConfigurationError):
            variant.bulk_load([1, 2, 2, 3])

    def test_bulk_load_empty(self, variant):
        tree = variant.bulk_load([])
        assert len(tree) == 0
        assert not tree.search(1).found

    def test_bstar_is_denser_than_btree(self):
        keys = list(range(20_000))
        b = BTree.bulk_load(keys, seed=7)
        bstar = BStarTree.bulk_load(keys, seed=7)
        assert len(bstar.nodes()) <= len(b.nodes())

    def test_height_grows_logarithmically(self, variant):
        small = variant.bulk_load(list(range(100)))
        large = variant.bulk_load(list(range(50_000)))
        assert small.height() < large.height() <= 8


class TestSearchTraces:
    def test_path_starts_at_root_and_respects_parentage(self, variant):
        tree = variant.bulk_load(list(range(0, 5000, 3)))
        res = tree.search(999)
        assert res.path[0] is tree.root
        for parent, child in zip(res.path, res.path[1:]):
            assert child in parent.children

    def test_bplus_always_reaches_leaf_depth(self):
        tree = BPlusTree.bulk_load(list(range(5000)))
        height = tree.height()
        for q in range(0, 5000, 97):
            res = tree.search(q)
            assert len(res.path) == height
            assert res.path[-1].is_leaf

    def test_btree_can_terminate_early_at_inner_node(self):
        tree = BTree.bulk_load(list(range(5000)))
        early = [tree.search(q) for q in range(5000)]
        inner_hits = [r for r in early if r.found_at_inner]
        assert inner_hits, "fence-key matches should terminate at inner nodes"
        for r in inner_hits:
            assert not r.path[-1].is_leaf

    def test_bplus_never_terminates_early(self):
        tree = BPlusTree.bulk_load(list(range(5000)))
        for q in range(0, 5000, 13):
            assert not tree.search(q).found_at_inner


class TestStructure:
    def test_nodes_bfs_root_first(self, variant):
        tree = variant.bulk_load(list(range(2000)))
        nodes = tree.nodes()
        assert nodes[0] is tree.root
        seen = {id(tree.root)}
        for node in nodes:
            for child in node.children:
                assert id(child) not in seen
                seen.add(id(child))
        assert len(seen) == len(nodes)

    def test_width_never_exceeds_order(self, variant):
        tree = variant()
        for k in random.Random(5).sample(range(100_000), 2000):
            tree.insert(k)
        for node in tree.nodes():
            width = len(node.keys) if node.is_leaf else len(node.children)
            assert width <= tree.order


@given(st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                min_size=1, max_size=300),
       st.sampled_from(ALL_VARIANTS))
@settings(max_examples=60, deadline=None)
def test_property_search_matches_set_membership(keys, variant):
    tree = variant()
    for k in keys:
        tree.insert(k)
    tree.check_invariants()
    present = set(keys)
    probes = list(keys[:50]) + [k + 1 for k in keys[:25]] + [-5, 10**9 + 7]
    for q in probes:
        assert tree.search(q).found == (q in present)


@given(st.sets(st.integers(min_value=0, max_value=10**9), min_size=1,
               max_size=400),
       st.sampled_from(ALL_VARIANTS),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_property_bulk_load_invariants(keys, variant, seed):
    tree = variant.bulk_load(sorted(keys), seed=seed)
    tree.check_invariants()
    assert tree.keys_in_order() == sorted(keys)
