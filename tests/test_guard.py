"""repro.guard: watchdog, invariants, fault injection, exec quarantine.

The fault-detection tests are the guard's reason to exist: each fault
class from :mod:`repro.guard.faults` is injected into a real TTA run
and must be caught with a diagnostic bundle naming the stuck unit and
job.  The exec-layer tests then check the degradation story end to
end — a poisoned spec is quarantined and satisfied by the legacy
engine instead of killing (or hanging) the sweep.
"""

import json
import os
import pathlib
import pickle

import pytest

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    GuardError,
    InvariantViolation,
    SimulationStallError,
)
from repro.gpu import GPU, AccelCall, GPUConfig
from repro.guard import Guard, GuardConfig, guard_mode
from repro.guard.faults import (
    FaultPlan,
    corrupt_cache_entry,
    faulty_factory,
    parse_plans,
)
from repro.harness.runner import scaled_config_for
from repro.kernels.btree_search import btree_accel_kernel
from repro.rta.rta import make_rta_factory
from repro.rta.traversal import Step, TraversalJob
from repro.sim.resources import Timeline
from repro.workloads import make_btree_workload


# -- configuration -----------------------------------------------------------------
class TestGuardConfig:
    def test_default_mode_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert guard_mode() == "on"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "paranoid")
        with pytest.raises(ConfigurationError):
            guard_mode()

    def test_from_env_thresholds(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "strict")
        monkeypatch.setenv("REPRO_GUARD_STALL_EVENTS", "5000")
        monkeypatch.setenv("REPRO_GUARD_MAX_CYCLES", "123456")
        config = GuardConfig.from_env()
        assert config.strict and config.checks_invariants
        assert config.stall_events == 5000
        assert config.max_cycles == 123456

    def test_bad_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_CHECK_EVENTS", "-5")
        with pytest.raises(ConfigurationError):
            GuardConfig.from_env()

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            GuardConfig(mode="bogus")
        with pytest.raises(ConfigurationError):
            GuardConfig(stall_events=0)
        with pytest.raises(ConfigurationError):
            GuardConfig(max_cycles=-1)

    def test_resolve_off_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "off")
        assert Guard.resolve(None) is None
        assert Guard.resolve(GuardConfig(mode="off")) is None

    def test_resolve_passthrough_and_config(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        guard = Guard()
        assert Guard.resolve(guard) is guard
        built = Guard.resolve(GuardConfig(mode="watch"))
        assert isinstance(built, Guard) and built.config.mode == "watch"

    def test_fault_plan_parsing(self):
        plans = parse_plans("stall:query=7:sm=0; lost_response:sm=all")
        assert plans[0] == FaultPlan("stall", query_id=7, sm=0)
        assert plans[1].applies_to_sm(3)
        with pytest.raises(FaultInjectionError):
            parse_plans("meltdown")


# -- error plumbing ----------------------------------------------------------------
class TestGuardErrors:
    def test_diagnostics_survive_pickling(self):
        err = SimulationStallError(
            "stuck", {"reason": "no-progress", "cycle": 42})
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SimulationStallError)
        assert isinstance(clone, GuardError)
        assert clone.diagnostics == {"reason": "no-progress", "cycle": 42}
        assert "no-progress" in str(clone)

    def test_diagnostics_default_empty(self):
        assert InvariantViolation("broken").diagnostics == {}


# -- timeline order checking -------------------------------------------------------
class _OrderSpy:
    def __init__(self):
        self.violations = []

    def order_violation(self, name, now, last):
        self.violations.append((name, now, last))


class TestTimelineOrderCheck:
    def test_monotone_acquisitions_pass(self):
        spy = _OrderSpy()
        timeline = Timeline("t")
        timeline.enable_order_check(spy)
        for now in (0.0, 1.0, 1.5, 1.2, 2.0):  # within 1-cycle jitter
            timeline.acquire(now, 1.0)
        assert spy.violations == []

    def test_out_of_order_acquisition_flagged(self):
        spy = _OrderSpy()
        timeline = Timeline("t")
        timeline.enable_order_check(spy)
        timeline.acquire(10.0, 1.0)
        timeline.acquire(5.0, 1.0)  # 5 < 10 - tolerance
        assert spy.violations and spy.violations[0][0] == "t"

    def test_unchecked_timeline_has_no_overhead_path(self):
        timeline = Timeline("t")
        timeline.acquire(10.0, 1.0)
        timeline.acquire(5.0, 1.0)  # silently reordered, as before


# -- fault detection ---------------------------------------------------------------
def _faulted_launch(plan, config, n_queries=64, **workload_kw):
    """One-SM TTA btree run with ``plan`` armed and ``config`` guarding."""
    wl = make_btree_workload("btree", n_keys=2048, n_queries=n_queries,
                             seed=9, **workload_kw)
    cfg = scaled_config_for(wl.image.size_bytes).with_overrides(n_sms=1)
    gpu = GPU(cfg, accelerator_factory=faulty_factory(
        make_rta_factory(tta=True), plan))
    args = wl.kernel_args(jobs=wl.jobs("tta"))
    return gpu.launch(btree_accel_kernel, wl.n_queries, args=args,
                      guard=Guard(config))


class TestFaultDetection:
    CONFIG = GuardConfig(mode="on", check_events=2_000, stall_events=10_000)

    @pytest.fixture(autouse=True)
    def _fast_core(self, monkeypatch):
        # The injectors target the fast batched driver and deliberately
        # no-op on legacy cores (that is what makes the exec service's
        # legacy retry a genuine recovery path), so pin the engine: the
        # suite must also pass under REPRO_SIM_CORE=legacy.
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")

    def test_stall_caught_by_watchdog(self):
        with pytest.raises(SimulationStallError) as err:
            _faulted_launch(FaultPlan("stall", query_id=3), self.CONFIG)
        bundle = err.value.diagnostics
        assert bundle["reason"] == "no-progress"
        assert 3 in bundle["cores"][0]["stuck_jobs"]
        assert bundle["cores"][0]["sm"] == 0

    def test_drop_wake_caught(self):
        with pytest.raises(SimulationStallError) as err:
            _faulted_launch(FaultPlan("drop_wake", query_id=3), self.CONFIG)
        bundle = err.value.diagnostics
        # Caught by the parked-work scan if other jobs keep the clock
        # moving, or by the quiescence check once the run goes quiet.
        assert bundle["reason"] in ("parked-work", "quiescent-with-pending")
        assert 3 in bundle["cores"][0]["stuck_jobs"]

    def test_dup_complete_caught(self):
        with pytest.raises(InvariantViolation) as err:
            _faulted_launch(FaultPlan("dup_complete", query_id=3),
                            self.CONFIG)
        assert err.value.diagnostics["reason"] == "duplicate-completion"
        assert "completed twice" in str(err.value)

    def test_lost_response_caught_by_conservation(self):
        with pytest.raises(InvariantViolation) as err:
            _faulted_launch(FaultPlan("lost_response"), self.CONFIG)
        bundle = err.value.diagnostics
        assert bundle["reason"] == "memsys-balance"
        assert bundle["memsys"]["sector_requests"] == \
            bundle["memsys"]["sector_responses"] + 1

    def test_lost_fetch_caught_by_cycle_budget(self):
        config = GuardConfig(mode="on", check_events=2_000,
                             stall_events=10_000, max_cycles=1_000_000)
        with pytest.raises(SimulationStallError) as err:
            _faulted_launch(FaultPlan("lost_fetch", after=5), config)
        assert err.value.diagnostics["reason"] == "cycle-budget"

    def test_bundle_is_json_serializable(self):
        with pytest.raises(SimulationStallError) as err:
            _faulted_launch(FaultPlan("stall", query_id=3), self.CONFIG)
        text = json.dumps(err.value.diagnostics)
        assert "no-progress" in text

    def test_clean_run_passes_strict(self):
        wl = make_btree_workload("btree", n_keys=2048, n_queries=64, seed=9)
        cfg = scaled_config_for(wl.image.size_bytes).with_overrides(n_sms=1)
        gpu = GPU(cfg, accelerator_factory=make_rta_factory(tta=True))
        args = wl.kernel_args(jobs=wl.jobs("tta"))
        stats = gpu.launch(btree_accel_kernel, wl.n_queries, args=args,
                           guard=Guard(GuardConfig(mode="strict",
                                                   check_events=2_000)))
        assert stats.accel_stats["jobs_completed"] == 64


# -- cache corruption --------------------------------------------------------------
class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        from repro.exec.cache import ResultCache
        from repro.exec.service import ExecutionService, STATUS_EXECUTED
        from repro.exec.spec import RunSpec

        cache = ResultCache(tmp_path)
        spec = RunSpec(kind="btree",
                       workload={"variant": "btree", "n_keys": 512,
                                 "n_queries": 32, "seed": 5},
                       platform="tta")
        service = ExecutionService(jobs=1, cache=cache)
        first = service.run(spec)
        damaged = corrupt_cache_entry(cache, spec)
        assert pathlib.Path(damaged).exists()

        assert cache.get(spec) is None  # miss, not an exception
        corrupt_dir = tmp_path / "corrupt"
        assert len(list(corrupt_dir.glob("*.pkl"))) == 1
        assert cache.stats()["corrupt"] == 1

        fresh = ExecutionService(jobs=1, cache=cache)
        again = fresh.run(spec)  # recomputed and re-cached
        assert fresh.manifest.records[spec.key].status == STATUS_EXECUTED
        assert again.cycles == first.cycles
        assert cache.get(spec) is not None


# -- pool restart limiting ---------------------------------------------------------
def _crash_or_echo(payload):
    if payload == "boom":
        os._exit(13)
    # Keep siblings in flight long enough that the crash reliably finds
    # them pending (the fallback re-runs them in one-shot isolation
    # workers, where the sleep repeats — kept short).
    import time
    time.sleep(0.3)
    return payload * 2


class TestPoolRestartLimit:
    def test_restart_budget_exhaustion_falls_back_to_serial(self, capsys):
        from repro.exec.pool import ParallelRunner

        try:
            runner = ParallelRunner(jobs=2, retries=0, max_restarts=0,
                                    backoff_base=0.0)
        except Exception:
            pytest.skip("no multiprocessing in this environment")
        with runner:
            outcomes = runner.map(_crash_or_echo,
                                  ["boom", "a", "b", "c"])
        by_payload = {p: outcomes[i]
                      for i, p in enumerate(["boom", "a", "b", "c"])}
        assert not by_payload["boom"].ok
        assert "restart limit" in by_payload["boom"].error
        # The isolation worker pinpoints the crasher by its exit code.
        assert "exit code 13" in by_payload["boom"].error
        for payload in ("a", "b", "c"):
            assert by_payload[payload].ok
            assert by_payload[payload].value == payload * 2
        captured = capsys.readouterr()
        assert "restart limit" in captured.err

    def test_deterministic_failures_not_retried(self):
        from repro.exec.pool import run_serial

        calls = []

        def fn(payload):
            calls.append(payload)
            raise InvariantViolation("broken", {"reason": "test"})

        outcomes = run_serial(fn, ["x"], retries=3)
        assert len(calls) == 1  # no retry: the verdict is deterministic
        assert outcomes[0].failure["type"] == "InvariantViolation"
        assert outcomes[0].failure["diagnostics"] == {"reason": "test"}


# -- exec quarantine + legacy retry -------------------------------------------------
class TestExecQuarantine:
    @pytest.fixture(autouse=True)
    def _fast_core(self, monkeypatch):
        # Quarantine is exercised by a fault that only arms on the fast
        # engine (legacy retry must genuinely recover); pin the engine
        # so the test also passes under REPRO_SIM_CORE=legacy.
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")

    def test_stalled_spec_is_quarantined_and_sweep_completes(
            self, tmp_path, monkeypatch):
        from repro.exec.cache import ResultCache
        from repro.exec.service import (
            ExecutionService,
            STATUS_EXECUTED,
            STATUS_QUARANTINED,
        )
        from repro.exec.spec import RunSpec

        # Query 40 only exists in the 64-query spec: exactly one point
        # of the sweep is poisoned.
        monkeypatch.setenv("REPRO_FAULTS", "stall:query=40:sm=all")
        monkeypatch.setenv("REPRO_GUARD_STALL_EVENTS", "10000")
        monkeypatch.setenv("REPRO_GUARD_CHECK_EVENTS", "2000")
        monkeypatch.setenv("REPRO_EXEC_SERIAL", "1")

        def spec_for(n_queries):
            return RunSpec(kind="btree",
                           workload={"variant": "btree", "n_keys": 512,
                                     "n_queries": n_queries, "seed": 5},
                           platform="tta")

        specs = [spec_for(16), spec_for(64), spec_for(32)]
        cache = ResultCache(tmp_path)
        service = ExecutionService(jobs=1, cache=cache)
        service.run_many(specs)  # must not raise and must not hang

        records = {spec.key: service.manifest.records[spec.key]
                   for spec in specs}
        assert records[specs[0].key].status == STATUS_EXECUTED
        assert records[specs[2].key].status == STATUS_EXECUTED
        poisoned = records[specs[1].key]
        assert poisoned.status == STATUS_QUARANTINED
        assert poisoned.engine == "legacy"
        assert "SimulationStallError" in poisoned.error
        assert service.manifest.quarantined == 1

        # The diagnostic bundle is on disk and names the stuck job.
        bundle_path = tmp_path / "quarantine" / f"{specs[1].key}.json"
        assert bundle_path.exists()
        bundle = json.loads(bundle_path.read_text())
        diag = bundle["diagnostics"]
        assert diag["reason"] == "no-progress"
        assert any(40 in core["stuck_jobs"] for core in diag["cores"])

        # The legacy result satisfies the point in memory but is never
        # written to the fast-engine-keyed disk cache.
        assert service.run(specs[1]).cycles > 0
        assert not cache.contains(specs[1])
        assert cache.contains(specs[0])

    def test_run_single_point_quarantines(self, tmp_path, monkeypatch):
        from repro.exec.cache import ResultCache
        from repro.exec.service import ExecutionService, STATUS_QUARANTINED
        from repro.exec.spec import RunSpec

        monkeypatch.setenv("REPRO_FAULTS", "stall:query=3")
        monkeypatch.setenv("REPRO_GUARD_STALL_EVENTS", "10000")
        monkeypatch.setenv("REPRO_GUARD_CHECK_EVENTS", "2000")

        spec = RunSpec(kind="btree",
                       workload={"variant": "btree", "n_keys": 512,
                                 "n_queries": 32, "seed": 5},
                       platform="tta")
        service = ExecutionService(jobs=1, cache=ResultCache(tmp_path))
        result = service.run(spec)
        assert result.cycles > 0
        record = service.manifest.records[spec.key]
        assert record.status == STATUS_QUARANTINED
        assert record.engine == "legacy"

    def test_degraded_run_still_writes_metrics_sidecar(
            self, tmp_path, monkeypatch):
        """A guard-quarantined point resolved by the legacy engine must
        not vanish from metrics reporting: the per-run metrics sidecar
        is written on the degraded path too, tagged as such."""
        from repro.exec.cache import ResultCache
        from repro.exec.service import ExecutionService, STATUS_QUARANTINED
        from repro.exec.spec import RunSpec

        monkeypatch.setenv("REPRO_FAULTS", "stall:query=3")
        monkeypatch.setenv("REPRO_GUARD_STALL_EVENTS", "10000")
        monkeypatch.setenv("REPRO_GUARD_CHECK_EVENTS", "2000")

        spec = RunSpec(kind="btree",
                       workload={"variant": "btree", "n_keys": 512,
                                 "n_queries": 32, "seed": 5},
                       platform="tta")
        cache = ResultCache(tmp_path)
        service = ExecutionService(jobs=1, cache=cache)
        service.run(spec)
        assert service.manifest.records[spec.key].status \
            == STATUS_QUARANTINED

        sidecar = cache.metrics_path(spec.key)
        assert sidecar.exists()
        doc = json.loads(sidecar.read_text())
        assert doc["engine"] == "legacy"
        assert doc["degraded"] is True
        assert doc["metrics"]  # a real snapshot, not an empty shell
        # ... while the result itself still never enters the
        # fast-engine-keyed disk cache.
        assert not cache.contains(spec)


# -- guard stays out of the model --------------------------------------------------
class TestGuardTransparency:
    def test_guarded_and_unguarded_stats_identical(self):
        wl = make_btree_workload("btree", n_keys=1024, n_queries=64, seed=7)
        cfg = scaled_config_for(wl.image.size_bytes)

        def run(guard):
            gpu = GPU(cfg, accelerator_factory=make_rta_factory(tta=True))
            args = wl.kernel_args(jobs=wl.jobs("tta"))
            stats = gpu.launch(btree_accel_kernel, wl.n_queries, args=args,
                               guard=guard)
            return stats, dict(args.results)

        off, off_results = run(GuardConfig(mode="off"))
        strict, strict_results = run(Guard(GuardConfig(mode="strict",
                                                       check_events=1_000)))
        assert off_results == strict_results
        assert float(off.cycles) == float(strict.cycles)
        assert off.total_warp_instructions == strict.total_warp_instructions
        assert off.accel_stats["jobs_completed"] == \
            strict.accel_stats["jobs_completed"]
