"""Workload generators with golden references.

Each module builds the data structures, queries, kernel argument blocks
and accelerator jobs for one of the paper's evaluated applications, and
exposes a brute-force golden reference so tests can verify that every
platform (baseline GPU, RTA, TTA, TTA+) computes identical results.
"""

from repro.workloads.btree_workload import BTreeWorkload, make_btree_workload
from repro.workloads.nbody import NBodyWorkload, make_nbody_workload
from repro.workloads.pointcloud import synth_lidar_cloud
from repro.workloads.rtnn import RTNNWorkload, make_rtnn_workload
from repro.workloads.rtree_workload import RTreeWorkload, make_rtree_workload
from repro.workloads.knn_workload import KNNWorkload, make_knn_workload
from repro.workloads.wknd import WKNDWorkload, make_wknd_workload
from repro.workloads.lumibench import LUMIBENCH_SUITE, make_lumibench_workload

__all__ = [
    "BTreeWorkload",
    "make_btree_workload",
    "NBodyWorkload",
    "make_nbody_workload",
    "synth_lidar_cloud",
    "RTNNWorkload",
    "make_rtnn_workload",
    "RTreeWorkload",
    "make_rtree_workload",
    "KNNWorkload",
    "make_knn_workload",
    "WKNDWorkload",
    "make_wknd_workload",
    "LUMIBENCH_SUITE",
    "make_lumibench_workload",
]
