"""k-d trees and k-nearest-neighbor search.

k-d trees are the other spatial structure the paper's introduction
cites for physics simulation and nearest-neighbor search ([22], [30],
[35], [76], [80], [104]).  A kNN query is a guided depth-first descent
with distance-based pruning: the inner-node test compares the query's
coordinate against the splitting plane (a 1-wide Query-Key comparison on
TTA) plus a prune test against the current k-th best distance (a
Point-to-Point distance test) — both operations TTA already provides,
which is exactly the generality argument of §II-C.
"""

import heapq
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3


class KDNode:
    """An inner node splits on ``axis`` at ``split``; leaves hold points."""

    __slots__ = ("axis", "split", "left", "right", "points", "point_ids",
                 "address")

    def __init__(self):
        self.axis = -1
        self.split = 0.0
        self.left: Optional["KDNode"] = None
        self.right: Optional["KDNode"] = None
        self.points: List[Vec3] = []
        self.point_ids: List[int] = []
        self.address = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def children(self) -> List["KDNode"]:
        return [] if self.is_leaf else [self.left, self.right]

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"KDNode(leaf, n={len(self.points)})"
        return f"KDNode(axis={self.axis}, split={self.split:.2f})"


class KDVisit(NamedTuple):
    node: KDNode
    kind: str      # "inner" (plane + prune tests) | "leaf" (distances)
    tests: int
    pruned: bool   # inner only: was the far subtree skipped


class KNNResult(NamedTuple):
    ids: Tuple[int, ...]        # nearest first
    distances: Tuple[float, ...]
    visits: Tuple[KDVisit, ...]


class KDTree:
    """A balanced k-d tree over 3D points (use z=0 for planar data)."""

    def __init__(self, points: Sequence[Vec3], max_leaf_size: int = 8,
                 dims: int = 3):
        if not points:
            raise ConfigurationError("k-d tree needs at least one point")
        if dims not in (2, 3):
            raise ConfigurationError("dims must be 2 or 3")
        if max_leaf_size < 1:
            raise ConfigurationError("max_leaf_size must be >= 1")
        self.points = list(points)
        self.dims = dims
        self.max_leaf_size = max_leaf_size
        order = list(range(len(self.points)))
        self.root = self._build(order, depth=0)
        #: bumped by every mutating operation; derived views (memory
        #: images, lowered jobs) key their validity on it.
        self.mutation_epoch = 0
        #: tombstoned point ids — slots in ``points`` no leaf references.
        self._deleted: set = set()
        self._leaf_of: Optional[dict] = None

    def _build(self, order: List[int], depth: int) -> KDNode:
        node = KDNode()
        if len(order) <= self.max_leaf_size:
            node.points = [self.points[i] for i in order]
            node.point_ids = list(order)
            return node
        axis = depth % self.dims
        order.sort(key=lambda i: self.points[i].component(axis))
        mid = len(order) // 2
        node.axis = axis
        node.split = self.points[order[mid]].component(axis)
        node.left = self._build(order[:mid], depth + 1)
        node.right = self._build(order[mid:], depth + 1)
        return node

    @classmethod
    def rebuilt(cls, points: Sequence[Vec3], live_ids: Sequence[int],
                max_leaf_size: int = 8, dims: int = 3) -> "KDTree":
        """A fresh balanced build over the live subset of ``points``.

        Point ids stay stable across the rebuild: the new tree shares
        the full (tombstoned) point list and only threads the live ids
        through ``_build``, so callers' ids survive arbitrarily many
        churn/rebuild cycles.
        """
        live = sorted(set(live_ids))
        if not live:
            raise ConfigurationError("rebuild needs at least one live point")
        tree = cls.__new__(cls)
        tree.points = list(points)
        tree.dims = dims
        tree.max_leaf_size = max_leaf_size
        tree.root = tree._build(live, depth=0)
        tree.mutation_epoch = 0
        tree._deleted = set(range(len(tree.points))) - set(live)
        tree._leaf_of = None
        return tree

    # -- online mutation --------------------------------------------------------
    #
    # Inserts route ``component <= split -> left``, matching the build's
    # ``order[:mid]`` partition, so the kNN prune invariant (far-side
    # points are at least ``|delta|`` away along the split axis) is
    # preserved.  Leaves overgrow ``max_leaf_size`` instead of
    # splitting — the decay a rebuild later repairs.

    def _invalidate(self) -> None:
        self.mutation_epoch = getattr(self, "mutation_epoch", 0) + 1

    def _deleted_set(self) -> set:
        if getattr(self, "_deleted", None) is None:
            self._deleted = set()
        return self._deleted

    def _leaf_map(self) -> dict:
        if getattr(self, "_leaf_of", None) is None:
            self._leaf_of = {}
            for node in self.nodes():
                if node.is_leaf:
                    for pid in node.point_ids:
                        self._leaf_of[pid] = node
        return self._leaf_of

    def insert_point(self, point: Vec3) -> int:
        """Online insert; returns the new point's stable id."""
        pid = len(self.points)
        self.points.append(point)
        node = self.root
        depth_touched = 1
        while not node.is_leaf:
            node = (node.left if point.component(node.axis) <= node.split
                    else node.right)
            depth_touched += 1
        node.points.append(point)
        node.point_ids.append(pid)
        self._leaf_map()[pid] = node
        self._invalidate()
        return pid

    def delete_point(self, pid: int) -> int:
        """Online delete; the slot in ``points`` becomes a tombstone."""
        if pid in self._deleted_set() or not 0 <= pid < len(self.points):
            raise KeyError(f"point id {pid} not live in k-d tree")
        leaf = self._leaf_map().get(pid)
        if leaf is None:
            raise KeyError(f"point id {pid} not live in k-d tree")
        at = leaf.point_ids.index(pid)
        leaf.point_ids.pop(at)
        leaf.points.pop(at)
        del self._leaf_of[pid]
        self._deleted_set().add(pid)
        self._invalidate()
        return 1

    def live_point_ids(self) -> List[int]:
        dead = self._deleted_set()
        return [i for i in range(len(self.points)) if i not in dead]

    @property
    def n_live(self) -> int:
        return len(self.points) - len(self._deleted_set())

    def refit(self) -> int:
        """Structural maintenance pass (k-d nodes store no bounds).

        k-d inner nodes hold split planes, which stay exact under
        insert/delete, so there is nothing to recompute — the pass
        exists so the scheduler charges the same bookkeeping sweep the
        other trees pay; only a rebuild restores balance/fill quality.
        Returns the number of nodes touched.
        """
        touched = len(self.nodes())
        self._invalidate()
        return touched

    def nodes(self) -> List[KDNode]:
        out, frontier = [], [self.root]
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            frontier.extend(node.children)
        return out

    def depth(self) -> int:
        def rec(node):
            if node.is_leaf:
                return 1
            return 1 + max(rec(node.left), rec(node.right))
        return rec(self.root)

    # -- kNN search -----------------------------------------------------------
    def knn(self, query: Vec3, k: int) -> KNNResult:
        """The k nearest points to ``query`` with a visit trace."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        #: max-heap of (-dist2, point_id); len <= k
        best: List[Tuple[float, int]] = []
        visits: List[KDVisit] = []

        def kth_dist2() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        def descend(node: KDNode) -> None:
            if node.is_leaf:
                for pid, point in zip(node.point_ids, node.points):
                    d2 = (point - query).length_squared()
                    if len(best) < k:
                        heapq.heappush(best, (-d2, pid))
                    elif d2 < kth_dist2():
                        heapq.heapreplace(best, (-d2, pid))
                visits.append(KDVisit(node, "leaf", len(node.points), False))
                return
            delta = query.component(node.axis) - node.split
            near, far = ((node.left, node.right) if delta <= 0
                         else (node.right, node.left))
            descend(near)
            # Prune: visit the far side only if the splitting plane is
            # closer than the current k-th neighbor.
            prune = delta * delta >= kth_dist2()
            visits.append(KDVisit(node, "inner", 2, prune))
            if not prune:
                descend(far)

        descend(self.root)
        ordered = sorted(((-negd2, pid) for negd2, pid in best))
        return KNNResult(tuple(pid for _d, pid in ordered),
                         tuple(d ** 0.5 for d, _p in ordered),
                         tuple(visits))

    def brute_force_knn(self, query: Vec3, k: int) -> Tuple[int, ...]:
        """Golden reference: full scan over the live points."""
        # getattr guards trees unpickled from caches written before
        # tombstones existed; the empty tuple keeps the unmutated path
        # identical to the historical full scan.
        dead = getattr(self, "_deleted", None) or ()
        scored = sorted(
            ((p - query).length_squared(), i)
            for i, p in enumerate(self.points) if i not in dead
        )
        return tuple(i for _d, i in scored[:k])
