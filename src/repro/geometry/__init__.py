"""Geometric primitives and intersection tests.

These are the *functional* counterparts of the RTA's fixed-function
units: the slab Ray-Box test, the Möller-Trumbore Ray-Triangle test and
the quadratic Ray-Sphere test, plus the Query-Key and Point-to-Point
operations that TTA adds (Algorithms 1 and 2 in the paper).
"""

from repro.geometry.vec import Vec3, cross, dot
from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle, ray_triangle_intersect
from repro.geometry.sphere import Sphere, ray_sphere_intersect
from repro.geometry.intersect import (
    point_distance_below,
    ray_aabb_intersect,
)

__all__ = [
    "Vec3",
    "dot",
    "cross",
    "AABB",
    "Ray",
    "Triangle",
    "Sphere",
    "ray_aabb_intersect",
    "ray_triangle_intersect",
    "ray_sphere_intersect",
    "point_distance_below",
]
