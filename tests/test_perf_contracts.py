"""Performance contracts of the vectorized/batched hot paths.

Three families:

* **Model fingerprints** — geometry/rta source edits must flip both the
  exec-cache scheduler fingerprint and the build fingerprint, so stale
  cached results can never be served across vectorized-path changes.
* **Allocation-free driver** — a warm RTA core resubmitted a 4096-job
  batch must not allocate per-job Python objects: the SoA job table
  recycles its slots.
* **Launch-level replay** — repeat launches of a marked kernel over an
  identical workload return byte-identical stats, and replay stays off
  under every environment where a launch is not a pure function of its
  arguments (legacy engine, armed faults, guard overrides).
"""

import pathlib
import shutil
import tracemalloc

from repro.exec.cache import build_fingerprint
from repro.gpu import GPUConfig
from repro.gpu.device import KernelStats
from repro.gpu.replay import launch_replay_enabled
from repro.gpu.sm import SM
from repro.harness.runner import run_btree, run_rtnn
from repro.kernels.radius_search import radius_query, radius_query_scalar
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rta import Step, TraversalJob
from repro.rta.rta import make_rta_factory
from repro.sim import _model_source_hash, make_simulator, scheduler_fingerprint
from repro.workloads import make_btree_workload, make_rtnn_workload

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages whose sources feed either fingerprint (superset is fine:
#: the hash functions only glob what they cover).
_FINGERPRINT_PACKAGES = ("sim", "geometry", "rta", "trees", "workloads")


def _copy_model_tree(tmp_path) -> pathlib.Path:
    root = tmp_path / "repro"
    for package in _FINGERPRINT_PACKAGES:
        shutil.copytree(_SRC / package, root / package,
                        ignore=shutil.ignore_patterns("__pycache__"))
    return root


class TestModelFingerprint:
    def test_copy_matches_repo_hashes(self, tmp_path):
        root = _copy_model_tree(tmp_path)
        assert _model_source_hash(root) == _model_source_hash()
        assert build_fingerprint(root=root) == build_fingerprint()

    def test_geometry_edit_flips_scheduler_hash(self, tmp_path):
        root = _copy_model_tree(tmp_path)
        before = _model_source_hash(root)
        target = root / "geometry" / "batch.py"
        target.write_text(target.read_text() + "\n# perturbed\n")
        assert _model_source_hash(root) != before

    def test_rta_edit_flips_scheduler_hash(self, tmp_path):
        root = _copy_model_tree(tmp_path)
        before = _model_source_hash(root)
        target = root / "rta" / "rta.py"
        target.write_text(target.read_text() + "\n# perturbed\n")
        assert _model_source_hash(root) != before

    def test_geometry_edit_flips_build_fingerprint(self, tmp_path):
        root = _copy_model_tree(tmp_path)
        before = build_fingerprint(root=root)
        target = root / "geometry" / "intersect.py"
        target.write_text(target.read_text() + "\n# perturbed\n")
        assert build_fingerprint(root=root) != before

    def test_scheduler_fingerprint_folds_model_hash(self):
        assert scheduler_fingerprint().startswith(_model_source_hash())


# -- allocation-free batched driver -------------------------------------------
_CFG = GPUConfig(n_sms=1, max_warps_per_sm=4)
_N_JOBS = 4096


def _make_core():
    sim = make_simulator()
    hierarchy = MemoryHierarchy(sim, _CFG)
    sm = SM(sim, 0, _CFG, hierarchy, KernelStats(), make_rta_factory(tta=True))
    return sim, sm.accelerator


def _single_step_jobs(result):
    return [TraversalJob(qid, [Step(0x10000 + qid * 64, 64, "box")], result)
            for qid in range(_N_JOBS)]


class TestAllocationFreeDriver:
    def test_warm_resubmission_allocates_no_per_job_objects(self):
        sim, core = _make_core()
        core.submit(sim.now, _single_step_jobs("warm"))
        sim.run()
        assert core.jobs_completed == _N_JOBS
        capacity = core._jobs.capacity

        second = _single_step_jobs("again")  # built outside the window
        tracemalloc.start()
        core.submit(sim.now, second)
        sim.run()
        _, peak = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()

        assert core.jobs_completed == 2 * _N_JOBS
        # Slot recycling: the table must not have grown a single slot.
        assert core._jobs.capacity == capacity
        assert len(core._jobs.free) == capacity
        # O(1) allocation *count* from the driver: a per-job state
        # object would leave ~N_JOBS blocks attributed to rta.py; the
        # table driver leaves a handful (the jobs-list copy, the batch,
        # the results list, one pending-set rebuild).
        rta_blocks = sum(
            stat.count for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.endswith("rta.py"))
        assert rta_blocks < 64, f"{rta_blocks} live blocks from rta.py"
        # Peak envelope: the fixed costs above are ~130 B/job at this
        # batch size; per-job driver objects add 100+ B/job on top, so
        # 160 B/job separates the two regimes with margin for noise.
        assert peak < 160 * _N_JOBS, \
            f"peak {peak}B for {_N_JOBS} jobs (> 160B/job)"


# -- launch-level replay ------------------------------------------------------
class TestLaunchReplay:
    def test_repeat_tta_launch_is_identical_and_recorded(self):
        wl = make_btree_workload("btree", n_keys=512, n_queries=128, seed=9)
        first = run_btree(wl, "tta")
        assert any(isinstance(key, tuple) and key and key[0] == "__launch__"
                   for key in wl._stream_cache)
        second = run_btree(wl, "tta")  # verify=True checks results again
        assert second.stats.cycles == first.stats.cycles
        assert second.stats.warp_instructions.as_dict() == \
            first.stats.warp_instructions.as_dict()
        assert second.stats.accel_stats["jobs_completed"] == \
            first.stats.accel_stats["jobs_completed"]

    def test_replayed_stats_are_fresh_objects(self):
        wl = make_rtnn_workload(n_points=256, n_queries=32, seed=4)
        first = run_rtnn(wl, "rta")
        second = run_rtnn(wl, "rta")
        assert second.stats is not first.stats
        second.stats.cycles = -1.0  # mutating a replay must not poison
        third = run_rtnn(wl, "rta")
        assert third.stats.cycles == first.stats.cycles

    def test_enabled_by_default(self):
        assert launch_replay_enabled()

    def test_disabled_under_legacy_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "legacy")
        assert not launch_replay_enabled()

    def test_disabled_under_armed_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "stall:q3")
        assert not launch_replay_enabled()

    def test_disabled_under_guard_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_MAX_CYCLES", "1000")
        assert not launch_replay_enabled()


# -- vectorized radius query --------------------------------------------------
class TestRadiusQueryParity:
    def test_vectorized_matches_scalar_trace_for_trace(self):
        wl = make_rtnn_workload(n_points=512, n_queries=24, seed=11)
        for query in wl.queries:
            fast = radius_query(wl.bvh, query, wl.radius)
            slow = radius_query_scalar(wl.bvh, query, wl.radius)
            assert fast.hits == slow.hits
            assert fast.visits == slow.visits
