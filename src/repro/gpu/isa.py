"""Abstract warp-level ISA for the behavioral SIMT model.

Kernels are per-thread Python generators that yield these descriptors.
Each descriptor carries a ``tag`` — a static program location with a
global order — which the warp executor uses to regroup threads: at any
step the live threads are bucketed by tag and the lowest tag issues
first, reproducing SIMT-stack serialization and reconvergence for the
structured control flow of tree traversals.

``Compute.kind`` feeds the Fig. 20 dynamic-instruction breakdown
("alu", "control", "sfu"); loads/stores count as "mem" and accelerator
launches as "tta".
"""

from typing import Any, NamedTuple


class Compute(NamedTuple):
    """``n`` back-to-back scalar instructions at program point ``tag``."""

    n: int
    tag: int
    kind: str = "alu"


class Load(NamedTuple):
    """A per-lane load; addresses differ per thread and are coalesced."""

    addr: int
    size: int
    tag: int


class Store(NamedTuple):
    """A per-lane store; modelled as fire-and-forget write-through."""

    addr: int
    size: int
    tag: int


class AccelCall(NamedTuple):
    """Hand a whole traversal to the attached accelerator (traceRay /
    traverseTreeTTA).  The executor resumes the thread with the
    accelerator's per-query result."""

    payload: Any
    tag: int


OP_TYPES = (Compute, Load, Store, AccelCall)
