"""The 16x16 crosspoint interconnect joining TTA+ OP units.

Each µop hand-off pushes the 120B payload (node + ray + intermediates)
from the producing unit's output buffer to the consuming unit's input
port.  An input port accepts one payload per cycle; a hand-off costs
``hop_latency`` cycles of wire/switch traversal plus any queueing at
the destination port.  Port contention and the serialization of µop
chains are the latency overheads Fig. 18 (bottom) attributes to "ICNT".
"""

from typing import Dict

from repro.errors import ConfigurationError
from repro.core.ttaplus.uop import UNIT_TYPES
from repro.sim.resources import Timeline

CROSSBAR_PORTS = 16
PAYLOAD_BYTES = 120  # 64B node + 32B ray + 24B intermediates (§V-C2)


class Crossbar:
    """Per-destination-port timelines modelling a 16x16 crosspoint switch."""

    def __init__(self, hop_latency: int = 2, perfect: bool = False,
                 ports_per_unit: int = 1):
        if hop_latency < 0:
            raise ConfigurationError("hop latency cannot be negative")
        if ports_per_unit < 1:
            raise ConfigurationError("need at least one port per unit")
        if len(UNIT_TYPES) + 1 > CROSSBAR_PORTS:
            raise ConfigurationError("more OP units than crossbar ports")
        self.hop_latency = 0 if perfect else hop_latency
        self.perfect = perfect
        # With S sets of OP units (Table II: 4 intersection-unit sets),
        # each unit type has S input ports; modelled as one timeline with
        # S-per-cycle acceptance.
        self._service = 1.0 / ports_per_unit
        self._ports: Dict[str, Timeline] = {
            unit: Timeline(f"icnt.{unit}") for unit in UNIT_TYPES
        }
        self._ports["writeback"] = Timeline("icnt.writeback")
        self.transfers = 0
        self.bytes_moved = 0

    def route(self, now: float, dst_unit: str) -> float:
        """Deliver one payload to ``dst_unit``; returns arrival time."""
        port = self._ports.get(dst_unit)
        if port is None:
            raise ConfigurationError(f"no crossbar port for {dst_unit!r}")
        self.transfers += 1
        self.bytes_moved += PAYLOAD_BYTES
        if self.perfect:
            return now
        start = port.acquire(now, self._service)
        return start + 1.0 + self.hop_latency

    def utilization(self, end: float) -> float:
        if end <= 0:
            return 0.0
        busy = sum(p.busy_cycles for p in self._ports.values())
        return min(1.0, busy / (end * len(self._ports)))

    def snapshot(self, end: float) -> dict:
        return {
            "icnt_transfers": self.transfers,
            "icnt_bytes": self.bytes_moved,
            "icnt_util": self.utilization(end),
        }
