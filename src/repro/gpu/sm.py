"""Streaming Multiprocessor: issue port, LDST unit, warp scheduling.

Scheduling is greedy-then-oldest in effect: a warp that acquires the
issue port keeps it for its whole compute block (greedy), and blocked
warps re-arbitrate in FIFO order (oldest).  Warps beyond the residency
limit (Table II: 32/SM) launch in waves as slots free up.

The warp loop is the hot path of every baseline-GPU run: op dispatch is
by exact class (kernels yield the four ISA descriptor types directly)
and analytic completion times are quantized to whole cycles with
:func:`~repro.sim.engine.ceil_cycles` before being yielded, so the
engine's integer clock never sees fractional waits.
"""

from typing import List

from repro.errors import SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.isa import AccelCall, Compute, Load, Store
from repro.gpu.replay import WarpTrace
from repro.gpu.warp import Warp
from repro.memsys.coalescer import coalesce_sectors
from repro.memsys.hierarchy import MemoryHierarchy
from repro.sim.engine import ceil_cycles
from repro.sim.resources import Timeline


class SM:
    """One streaming multiprocessor with an optional attached accelerator."""

    def __init__(self, sim, sm_id: int, config: GPUConfig,
                 hierarchy: MemoryHierarchy, stats,
                 accelerator_factory=None):
        self.sim = sim
        self.sm_id = sm_id
        self.config = config
        self.hierarchy = hierarchy
        self.stats = stats
        self.l1 = hierarchy.make_l1(sm_id)
        self.issue_port = Timeline(f"sm{sm_id}.issue")
        self.ldst = Timeline(f"sm{sm_id}.ldst")
        # Cached tracer (repro.obs): None unless GPU.launch attached one
        # to the simulator before constructing the SMs.
        self.trace = getattr(sim, "tracer", None)
        self._unit = f"sm{sm_id}"
        self.warp_queue: List[Warp] = []
        self.accelerator = (accelerator_factory(self)
                            if accelerator_factory is not None else None)
        self._done_count = 0

    # -- launch ----------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        self.warp_queue.append(warp)

    def start(self) -> None:
        slots = min(self.config.max_warps_per_sm, len(self.warp_queue))
        for _ in range(slots):
            self.sim.spawn(self._slot())

    def guard_state(self) -> dict:
        """JSON-serializable snapshot for repro.guard diagnostic bundles."""
        return {
            "sm": self.sm_id,
            "warps_queued": len(self.warp_queue),
            "warps_done": self._done_count,
            "issue_next_free": self.issue_port.next_free,
            "ldst_next_free": self.ldst.next_free,
        }

    def _slot(self):
        """One residency slot: runs queued warps back to back."""
        while self.warp_queue:
            warp = self.warp_queue.pop(0)
            if warp.__class__ is WarpTrace:
                yield from self._run_trace(warp)
            else:
                yield from self._run_warp(warp)
            self._done_count += 1

    # -- traced execution -----------------------------------------------------
    def _run_trace(self, trace: WarpTrace):
        """Time a precomputed warp trace (see :mod:`repro.gpu.replay`).

        Mirrors :meth:`_run_warp` op for op — same resource acquisitions
        in the same order, same statistics calls — but over macro steps
        whose regrouping and coalescing were done once at record time.
        """
        sim = self.sim
        cfg = self.config
        stats = self.stats
        warp_size = cfg.warp_size
        issue_width = cfg.issue_width
        sector_size = cfg.sector_size
        sectors_per_cycle = cfg.ldst_sectors_per_cycle
        issue_acquire = self.issue_port.acquire
        ldst_acquire = self.ldst.acquire
        access_sectors = self.hierarchy.access_sectors
        dram_transfer = self.hierarchy.dram.transfer
        l1 = self.l1
        count_compute = stats.count_compute
        count_mem = stats.count_mem
        simt_issue = stats.simt_issue
        obs = self.trace
        unit = self._unit
        for step in trace.steps:
            code = step[0]
            if code == 0:  # Compute group
                _, active, n, kind, first_n = step
                service = n / issue_width
                start = issue_acquire(sim.now, service)
                wait = ceil_cycles(start + service - sim.now)
                if wait > 0:
                    yield wait
                count_compute(kind, n, active, warp_size)
                simt_issue(active, warp_size, first_n)
                if obs is not None:
                    obs.emit("sm", unit, kind, start, service, active)
            elif code == 1:  # Load group (sectors pre-coalesced)
                _, active, sectors = step
                start = issue_acquire(sim.now, 1)
                service = len(sectors) / sectors_per_cycle
                ldst_start = ldst_acquire(max(sim.now, start + 1), service)
                ready = access_sectors(ldst_start + service, l1, sectors)
                count_mem(active, warp_size, len(sectors), hit_l1=False)
                if obs is not None:
                    obs.emit("sm", unit, "load", start, ready - start,
                             len(sectors))
                wait = ceil_cycles(ready - sim.now)
                if wait > 0:
                    yield wait
                simt_issue(active, warp_size, 1)
            else:  # Store group
                _, active, n_sectors = step
                start = issue_acquire(sim.now, 1)
                ldst_acquire(max(sim.now, start + 1),
                             n_sectors / sectors_per_cycle)
                dram_transfer(sim.now, n_sectors * sector_size)
                count_mem(active, warp_size, n_sectors, hit_l1=False)
                if obs is not None:
                    obs.emit("sm", unit, "store", start, 1.0, n_sectors)
                wait = ceil_cycles(start + 1 - sim.now)
                if wait > 0:
                    yield wait
                simt_issue(active, warp_size, 1)

    # -- warp execution ------------------------------------------------------
    def _run_warp(self, warp: Warp):
        sim = self.sim
        cfg = self.config
        stats = self.stats
        warp_size = cfg.warp_size
        issue_width = cfg.issue_width
        sector_size = cfg.sector_size
        sectors_per_cycle = cfg.ldst_sectors_per_cycle
        issue_acquire = self.issue_port.acquire
        ldst_acquire = self.ldst.acquire
        access_sectors = self.hierarchy.access_sectors
        dram_transfer = self.hierarchy.dram.transfer
        l1 = self.l1
        pending = warp.pending
        obs = self.trace
        unit = self._unit
        warp.prime()
        while True:
            group = warp.min_group()
            if group is None:
                break
            tids = group[1]
            op = pending[tids[0]]
            active = len(tids)
            results = None
            cls = op.__class__

            if cls is Compute:
                n = op.n
                if active > 1:
                    for tid in tids:
                        m = pending[tid].n
                        if m > n:
                            n = m
                service = n / issue_width
                start = issue_acquire(sim.now, service)
                wait = ceil_cycles(start + service - sim.now)
                if wait > 0:
                    yield wait
                stats.count_compute(op.kind, n, active, warp_size)
                stats.simt_issue(active, warp_size, op.n)
                if obs is not None:
                    obs.emit("sm", unit, op.kind, start, service, active)

            elif cls is Load:
                start = issue_acquire(sim.now, 1)
                requests = [(pending[tid].addr, pending[tid].size)
                            for tid in tids]
                sectors = coalesce_sectors(requests, sector_size)
                service = len(sectors) / sectors_per_cycle
                ldst_start = ldst_acquire(max(sim.now, start + 1), service)
                ready = access_sectors(ldst_start + service, l1, sectors)
                stats.count_mem(active, warp_size, len(sectors),
                                hit_l1=False)
                if obs is not None:
                    obs.emit("sm", unit, "load", start, ready - start,
                             len(sectors))
                wait = ceil_cycles(ready - sim.now)
                if wait > 0:
                    yield wait  # in-order: block until the slowest lane's data
                stats.simt_issue(active, warp_size, 1)

            elif cls is Store:
                start = issue_acquire(sim.now, 1)
                requests = [(pending[tid].addr, pending[tid].size)
                            for tid in tids]
                sectors = coalesce_sectors(requests, sector_size)
                ldst_acquire(max(sim.now, start + 1),
                             len(sectors) / sectors_per_cycle)
                # Write-through, fire-and-forget: charge DRAM bandwidth only.
                dram_transfer(sim.now, len(sectors) * sector_size)
                stats.count_mem(active, warp_size, len(sectors),
                                hit_l1=False)
                if obs is not None:
                    obs.emit("sm", unit, "store", start, 1.0, len(sectors))
                wait = ceil_cycles(start + 1 - sim.now)
                if wait > 0:
                    yield wait
                stats.simt_issue(active, warp_size, 1)

            elif cls is AccelCall:
                start = issue_acquire(sim.now, 1)
                wait = ceil_cycles(start + 1 - sim.now)
                if wait > 0:
                    yield wait
                payloads = [pending[tid].payload for tid in tids]
                if obs is not None:
                    submit_at = sim.now
                signal = self.accelerator.submit(sim.now, payloads)
                per_query = yield signal
                results = {tid: per_query[i] for i, tid in enumerate(tids)}
                stats.count_accel(active, warp_size)
                stats.simt_issue(active, warp_size, 1)
                if obs is not None:
                    obs.emit("sm", unit, "accel_call", submit_at,
                             sim.now - submit_at, active)

            else:
                # Warp._advance validated the op, so only an exotic
                # subclass of an ISA type can land here.
                raise SimulationError(
                    f"unhandled op descriptor {op!r} (subclassing the ISA "
                    "types is not supported by the fast dispatch)"
                )

            warp.step(tids, results)
