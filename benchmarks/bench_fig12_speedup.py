"""Fig. 12 — end-to-end speedups of TTA/TTA+ over the baselines."""

import math

from repro.harness import experiments


def test_fig12_speedup(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig12_speedup(scale), rounds=1, iterations=1)
    save_table("fig12_speedup", table)
    rows = {(r[0], r[1]): r for r in table.rows}
    # Every B-Tree-family configuration must beat the baseline on TTA.
    for (name, cfg), row in rows.items():
        if name in ("btree", "bstar", "bplus"):
            assert row[2] > 1.0, f"{name} {cfg}: TTA slower than baseline"
            assert row[3] > 0.9, f"{name} {cfg}: TTA+ collapsed"
    # N-Body lands in the paper's 1.1-1.7x band (with slack for scale).
    for name in ("nbody2d", "nbody3d"):
        speedups = [r[2] for (n, _c), r in rows.items() if n == name]
        assert all(0.9 < s < 4.0 for s in speedups), f"{name}: {speedups}"
    # RTNN: TTA speeds up over RTA; the naive TTA+ port slows down; the
    # *RTNN optimization recovers.
    assert rows[("rtnn(tta)", f"{experiments.params(scale)['rtnn'][0]}pts")][2] > 1.0
    naive = rows[("rtnn(naive)", f"{experiments.params(scale)['rtnn'][0]}pts")][2]
    opt = rows[("*rtnn", f"{experiments.params(scale)['rtnn'][0]}pts")][2]
    assert naive < 1.05
    assert opt > naive
