"""Baseline Ray-Tracing Accelerator (RTA) model.

One RTA is attached to each SM (Table II).  The engine mirrors the
Fig. 4a structure: a warp buffer admits up to ``4 warps x 32`` rays; a
hardware memory scheduler issues one node request per cycle and merges
duplicate node fetches; returned nodes are dispatched by the operation
arbiter to fixed-function intersection pipelines (Ray-Box 13 cycles,
Ray-Triangle 37 cycles, 4 parallel sets).

Traversals are replayed from functional visit traces (see
:mod:`repro.rta.traversal`), so the timing model is always attached to
a functionally verified traversal.
"""

from repro.rta.rta import RTACore, make_rta_factory
from repro.rta.traversal import Step, TraversalJob
from repro.rta.units import FixedFunctionBackend

__all__ = [
    "RTACore",
    "make_rta_factory",
    "Step",
    "TraversalJob",
    "FixedFunctionBackend",
]
