"""Tree data structures traversed by the accelerators.

* :mod:`~repro.trees.btree` — B-Tree, B*Tree and B+Tree (9-wide, matching
  the paper's evaluation configuration).
* :mod:`~repro.trees.bvh` — bounding volume hierarchies (median-split and
  binned-SAH builders) plus two-level TLAS/BLAS structures.
* :mod:`~repro.trees.octree` — quadtree/octree with center-of-mass
  aggregates for Barnes-Hut N-Body.
* :mod:`~repro.trees.layout` — serialization of any tree into a flat
  byte-addressable image so the memory system sees real addresses.
"""

from repro.trees.btree import BPlusTree, BStarTree, BTree
from repro.trees.bvh import BVH, BVHNode, Instance, TwoLevelBVH
from repro.trees.octree import BarnesHutTree
from repro.trees.rtree import RTree
from repro.trees.layout import TreeImage

__all__ = [
    "BTree",
    "BStarTree",
    "BPlusTree",
    "BVH",
    "BVHNode",
    "Instance",
    "TwoLevelBVH",
    "BarnesHutTree",
    "RTree",
    "TreeImage",
]
