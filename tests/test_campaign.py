"""Tests for the campaign layer (repro.campaign).

Covers the acceptance properties of the subsystem:

* factorial expansion is deterministic, constraint-filtered, and
  rep-resampled (distinct seeds, distinct cache keys);
* the lease protocol claims exactly once, steals only expired (or
  provably dead local) leases, and stealing is race-safe;
* a campaign drains to a manifest whose result fingerprint is invariant
  under worker count, interruption, and re-execution in a fresh cache;
* a re-run executes zero simulations, and a warm-cache campaign in a
  fresh directory resolves every point as a cache hit;
* ``repro bench`` classifies direction, widens gates by baseline noise,
  and flags only genuine regressions.
"""

import json
import os
import time

import pytest

import repro.campaign as campaign
from repro.campaign import (
    CampaignSpec,
    CampaignWorker,
    LeaseBoard,
    campaign_dir_for,
    run_campaign,
    run_worker,
    worker_order,
)
from repro.campaign.bench import (
    check,
    classify,
    compare,
    flatten,
    noise_pct,
    _rep_arrays,
)
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache


def tiny_table(name="t", n_keys=(256,), platforms=("gpu",), reps=1,
               **extra):
    doc = {
        "name": name,
        "workloads": [{"kind": "btree",
                       "params": {"n_keys": list(n_keys),
                                  "n_queries": 64}}],
        "platforms": list(platforms),
        "reps": reps,
    }
    doc.update(extra)
    return CampaignSpec.from_dict(doc)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# -- expansion ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_expansion_is_full_cross_product(self):
        spec = tiny_table(n_keys=(256, 512), platforms=("gpu", "tta"),
                          reps=3)
        points = spec.expand()
        assert len(points) == 2 * 2 * 3
        assert len({p.key for p in points}) == len(points)

    def test_expansion_is_deterministic(self):
        spec = tiny_table(n_keys=(256, 512), platforms=("gpu", "tta"))
        first = [p.key for p in spec.expand()]
        second = [p.key for p in spec.expand()]
        assert first == second

    def test_invalid_platform_for_kind_is_dropped(self):
        # wknd cannot run on gpu; the btree cells keep gpu, the single
        # shared platform list is filtered per-kind.
        spec = CampaignSpec.from_dict({
            "name": "mix",
            "workloads": [
                {"kind": "btree", "params": {"n_keys": 256,
                                             "n_queries": 64}},
                {"kind": "wknd", "params": {}},
            ],
            "platforms": ["gpu", "ttaplus"],
        })
        points = spec.expand()
        by_kind = {}
        for p in points:
            by_kind.setdefault(p.axes["kind"], set()).add(
                p.axes["platform"])
        assert by_kind["btree"] == {"gpu", "ttaplus"}
        assert by_kind["wknd"] == {"ttaplus"}

    def test_platform_valid_for_no_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_table(platforms=("rta",))  # btree never runs on rta

    def test_reps_resample_the_dataset(self):
        spec = tiny_table(reps=3)
        seeds = sorted(p.axes["params"]["seed"] for p in spec.expand())
        assert seeds == [0, 1, 2]
        # base_seed shifts every rep uniformly.
        shifted = tiny_table(reps=3, base_seed=10)
        assert sorted(p.axes["params"]["seed"]
                      for p in shifted.expand()) == [10, 11, 12]

    def test_exclude_removes_matching_cells(self):
        spec = tiny_table(n_keys=(256, 512), platforms=("gpu", "tta"),
                          exclude=[{"platform": "tta",
                                    "params": {"n_keys": 512}}])
        points = spec.expand()
        assert len(points) == 3
        assert not any(p.axes["platform"] == "tta"
                       and p.axes["params"]["n_keys"] == 512
                       for p in points)

    def test_all_cells_excluded_is_an_error(self):
        with pytest.raises(ConfigurationError, match="zero points"):
            tiny_table(exclude=[{"kind": "btree"}]).expand()

    def test_campaign_id_tracks_table_content(self):
        a, b = tiny_table(), tiny_table(reps=2)
        assert a.campaign_id != b.campaign_id
        assert a.campaign_id == tiny_table().campaign_id
        assert a.slug.startswith("t-")

    def test_round_trips_through_file(self, tmp_path):
        spec = tiny_table(n_keys=(256, 512), reps=2)
        path = spec.write(tmp_path / "table.json")
        again = CampaignSpec.from_file(path)
        assert again.canonical() == spec.canonical()
        assert [p.key for p in again.expand()] == \
            [p.key for p in spec.expand()]

    def test_bad_documents_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="required field"):
            CampaignSpec.from_dict({"name": "x"})
        with pytest.raises(ConfigurationError, match="kind"):
            tiny_table().from_dict({
                "name": "x",
                "workloads": [{"kind": "nope"}],
                "platforms": ["gpu"]})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            CampaignSpec.from_file(bad)

    def test_duplicate_cells_rejected(self):
        # Two identical workload entries expand to the same RunSpec.
        with pytest.raises(ConfigurationError, match="same RunSpec"):
            CampaignSpec.from_dict({
                "name": "dup",
                "workloads": [
                    {"kind": "btree", "params": {"n_keys": 256,
                                                 "n_queries": 64}},
                    {"kind": "btree", "params": {"n_keys": 256,
                                                 "n_queries": 64}},
                ],
                "platforms": ["gpu"],
            }).expand()

    def test_config_axis_labels_points(self):
        spec = tiny_table(configs=[None, {"label": "big",
                                          "policy": "scaled",
                                          "overrides": {"n_sms": 8}}])
        labels = {p.axes["config"] for p in spec.expand()}
        assert labels == {"default", "big"}
        assert any("#r0" in p.label for p in spec.expand())

    def test_worker_order_is_a_permutation_and_differs(self):
        points = tiny_table(n_keys=(256, 512, 1024),
                            platforms=("gpu", "tta"), reps=2).expand()
        orders = {wid: [p.key for p in worker_order(points, wid)]
                  for wid in ("w0", "w1", "w2")}
        for order in orders.values():
            assert sorted(order) == sorted(p.key for p in points)
        assert len({tuple(o) for o in orders.values()}) > 1


# -- leases -------------------------------------------------------------------------
class TestLeaseBoard:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path, "a")
        b = LeaseBoard(tmp_path, "b")
        assert a.claim("k")
        assert not b.claim("k")
        assert b.holder("k")["worker"] == "a"
        a.release("k")
        assert b.claim("k")

    def test_live_lease_cannot_be_stolen(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", ttl_s=300.0)
        b = LeaseBoard(tmp_path, "b", ttl_s=300.0)
        assert a.claim("k")
        assert not b.steal("k")
        assert not b.acquire("k")
        assert b.holder("k")["worker"] == "a"

    def test_expired_lease_is_stolen(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", ttl_s=0.01)
        b = LeaseBoard(tmp_path, "b", ttl_s=0.01)
        assert a.claim("k")
        stale = a._path("k")
        time.sleep(0.05)
        os.utime(stale, (time.time() - 10, time.time() - 10))
        assert b.acquire("k")
        assert b.stolen == 1
        assert b.holder("k")["worker"] == "b"

    def test_dead_local_pid_is_stolen_immediately(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", ttl_s=300.0)
        assert a.claim("k")
        # Rewrite the lease as if a long-gone local process held it;
        # the TTL has not expired but the owner provably has.
        lease = a.holder("k")
        lease["pid"] = 2 ** 22 + 12345  # beyond default pid_max
        a._path("k").write_text(json.dumps(lease))
        b = LeaseBoard(tmp_path, "b", ttl_s=300.0)
        assert b.steal("k")

    def test_steal_race_has_one_winner(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", ttl_s=0.0)
        assert a.claim("k")
        os.utime(a._path("k"), (time.time() - 10, time.time() - 10))
        thieves = [LeaseBoard(tmp_path, f"t{i}", ttl_s=0.0)
                   for i in range(4)]
        # Sequential here (true concurrency is exercised by the
        # multi-worker campaign tests); the invariant is that after
        # any steal sequence exactly one nonce survives.
        wins = [t.steal("k") for t in thieves]
        assert wins.count(True) >= 1
        owner = thieves[0].holder("k")["worker"]
        assert owner in {f"t{i}" for i in range(4)}

    def test_sweep_counts(self, tmp_path):
        a = LeaseBoard(tmp_path, "a", ttl_s=300.0)
        a.claim("live")
        a.claim("old")
        lease = a.holder("old")
        lease["acquired"] = time.time() - 999
        a._path("old").write_text(json.dumps(lease))
        os.utime(a._path("old"), (time.time() - 999, time.time() - 999))
        assert a.sweep() == {"live": 1, "expired": 1}


# -- the drain loop -----------------------------------------------------------------
class TestCampaignRuns:
    def test_serial_campaign_drains_and_manifests(self, cache):
        spec = tiny_table(n_keys=(256, 512), reps=2)
        manifest = run_campaign(spec, workers=1, cache=cache, quiet=True)
        assert manifest["totals"] == {
            "points": 4, "executed": 4, "cached": 0, "failed": 0,
            "quarantined": 0, "stolen_leases": 0, "unresolved": 0}
        assert manifest["invocation"]["executed"] == 4
        assert len(manifest["points"]) == 4
        for record in manifest["points"]:
            assert record["status"] == "executed"
            assert record["engine"] == "fast"
            assert record["wall_s"] >= 0.0
            assert record["peak_rss_kb"] > 0.0
            assert not record["cache_hit"]
        assert manifest["metrics"]["scalars"]["campaign.points"] == 4
        assert "campaign.point_wall_s" in manifest["metrics"]["histograms"]
        directory = campaign_dir_for(spec, cache)
        on_disk = json.loads((directory / "manifest.json").read_text())
        assert on_disk["result_fingerprint"] == \
            manifest["result_fingerprint"]

    def test_rerun_executes_nothing(self, cache):
        spec = tiny_table(n_keys=(256, 512))
        first = run_campaign(spec, workers=1, cache=cache, quiet=True)
        again = run_campaign(spec, workers=1, cache=cache, quiet=True)
        assert again["invocation"]["executed"] == 0
        assert again["invocation"]["skipped"] == 2
        assert again["result_fingerprint"] == first["result_fingerprint"]

    def test_warm_cache_fresh_dir_is_all_hits(self, cache, tmp_path):
        spec = tiny_table(n_keys=(256, 512))
        first = run_campaign(spec, workers=1, cache=cache, quiet=True)
        manifest = run_campaign(spec, workers=1, cache=cache, quiet=True,
                                directory=tmp_path / "fresh")
        assert manifest["totals"]["cached"] == 2
        assert manifest["invocation"]["executed"] == 0
        assert manifest["result_fingerprint"] == \
            first["result_fingerprint"]

    def test_resume_from_partial_campaign(self, cache, tmp_path):
        """Kill a campaign mid-flight; the re-run executes only the
        missing points and the final manifest matches an uninterrupted
        run's fingerprint."""
        spec = tiny_table(n_keys=(256, 512), reps=2)  # 4 points

        # "Crash" after two points: a worker with max_points=2 stops
        # early exactly as a killed process would — records for done
        # points, nothing for the rest.
        directory = campaign.init_campaign(spec, cache=cache)
        partial = run_worker(directory, worker_id="victim", cache=cache,
                             max_points=2, quiet=True)
        assert partial.partial and partial.resolved == 2

        resumed = run_campaign(spec, workers=1, cache=cache, quiet=True)
        assert resumed["invocation"]["executed"] == 2  # only the rest
        assert resumed["totals"]["unresolved"] == 0

        # Uninterrupted control run: fresh cache, fresh directory.
        control_cache = ResultCache(tmp_path / "control")
        control = run_campaign(spec, workers=1, cache=control_cache,
                               quiet=True)
        assert control["result_fingerprint"] == \
            resumed["result_fingerprint"]

    def test_crashed_workers_lease_is_stolen(self, cache):
        spec = tiny_table(n_keys=(256,))
        directory = campaign.init_campaign(spec, cache=cache)
        point = spec.expand()[0]
        # A dead process left its lease behind (lease without record).
        dead = LeaseBoard(directory / "leases", "dead",
                          ttl_s=spec.lease_ttl_s)
        assert dead.claim(point.key)
        lease = dead.holder(point.key)
        lease["pid"] = 2 ** 22 + 54321
        dead._path(point.key).write_text(json.dumps(lease))

        report = run_worker(directory, worker_id="rescuer", cache=cache,
                            quiet=True)
        assert report.executed == 1
        assert report.stolen == 1
        manifest = campaign.finalize(directory, cache=cache)
        assert manifest["totals"]["stolen_leases"] == 1
        assert manifest["totals"]["unresolved"] == 0

    def test_multi_worker_matches_serial_fingerprint(self, cache,
                                                     tmp_path):
        spec = tiny_table(n_keys=(256, 512), platforms=("gpu", "tta"),
                          reps=2)  # 8 points
        parallel = run_campaign(spec, workers=2, cache=cache, quiet=True)
        assert parallel["totals"]["unresolved"] == 0
        assert parallel["totals"]["failed"] == 0

        serial_cache = ResultCache(tmp_path / "serial")
        serial = run_campaign(spec, workers=1, cache=serial_cache,
                              quiet=True)
        assert parallel["result_fingerprint"] == \
            serial["result_fingerprint"]

    def test_reopening_with_different_table_rejected(self, cache,
                                                     tmp_path):
        where = tmp_path / "campdir"
        campaign.init_campaign(tiny_table(), directory=where, cache=cache)
        with pytest.raises(ConfigurationError, match="different campaign"):
            campaign.init_campaign(tiny_table(reps=2), directory=where,
                                   cache=cache)

    def test_status_probe(self, cache):
        spec = tiny_table(n_keys=(256, 512))
        directory = campaign.init_campaign(spec, cache=cache)
        before = campaign.status(directory)
        assert before["points"] == 2 and before["resolved"] == 0
        run_campaign(spec, workers=1, cache=cache, quiet=True)
        after = campaign.status(directory)
        assert after["resolved"] == 2 and after["unresolved"] == 0
        assert after["manifest_written"]


# -- cache maintenance --------------------------------------------------------------
class TestCacheMaintenance:
    def test_stats_reports_campaigns_and_leases(self, cache):
        spec = tiny_table()
        directory = campaign.init_campaign(spec, cache=cache)
        board = LeaseBoard(directory / "leases", "w0", ttl_s=300.0)
        board.claim("somekey")
        stats = cache.stats()
        assert stats["campaigns"] == 1
        assert stats["leases"] == 1
        assert stats["stale_leases"] == 0

    def test_prune_stale_leases(self, cache):
        spec = tiny_table()
        directory = campaign.init_campaign(spec, cache=cache)
        board = LeaseBoard(directory / "leases", "w0", ttl_s=300.0)
        board.claim("fresh")
        board.claim("stale")
        stale = board._path("stale")
        lease = json.loads(stale.read_text())
        lease["acquired"] = time.time() - 9999
        stale.write_text(json.dumps(lease))
        os.utime(stale, (time.time() - 9999, time.time() - 9999))
        assert cache.stats()["stale_leases"] == 1
        assert cache.prune_stale_leases() == 1
        assert not stale.exists()
        assert board._path("fresh").exists()

    def test_prune_quarantine(self, cache):
        qdir = cache.base / "quarantine"
        qdir.mkdir(parents=True)
        (qdir / "deadbeef.json").write_text("{}")
        assert cache.stats()["quarantine"] == 1
        assert cache.prune_quarantine() == 1
        assert cache.stats()["quarantine"] == 0


# -- bench diffing ------------------------------------------------------------------
class TestBench:
    def test_classify_directions(self):
        assert classify("a.fast_s") == "lower"
        assert classify("a.p99_ms") == "lower"
        assert classify("a.peak_rss") == "lower"
        assert classify("a.speedup") == "higher"
        assert classify("a.goodput_qps") == "higher"
        assert classify("a.n_procs") is None

    def test_flatten_skips_metadata_reps_and_bools(self):
        doc = {"schema": "v9", "generated_unix": 123,
               "group": {"fast_s": 1.0, "fast_reps": [1.0, 1.1],
                         "enabled": True}}
        assert flatten(doc) == {"group.fast_s": 1.0}
        assert _rep_arrays(doc) == {"group.fast_reps": [1.0, 1.1]}

    def test_noise_widens_the_gate(self):
        base = {"g": {"fast_s": 1.0,
                      "fast_reps": [0.8, 1.0, 1.2]}}  # cv = 20%
        cand = {"g": {"fast_s": 1.15}}  # +15%: inside 3x20% noise gate
        diff = compare(base, cand)
        assert diff.deltas[0].noise_pct == pytest.approx(20.0)
        assert diff.deltas[0].threshold_pct == pytest.approx(60.0)
        assert not diff.regressions

    def test_tight_baseline_keeps_tight_gate(self):
        base = {"g": {"fast_s": 1.0, "fast_reps": [1.0, 1.001, 0.999]}}
        diff = compare(base, {"g": {"fast_s": 1.15}})
        assert diff.regressions  # +15% > 10% base gate, cv ~ 0.1%

    def test_direction_awareness(self):
        base = {"g": {"fast_s": 1.0, "speedup": 10.0, "n_procs": 4}}
        cand = {"g": {"fast_s": 0.7, "speedup": 13.0, "n_procs": 8}}
        diff = compare(base, cand)
        assert not diff.regressions
        assert {d.path for d in diff.improvements} == \
            {"g.fast_s", "g.speedup"}
        # Informational leaves never gate, even at +100%.
        assert all(d.path != "g.n_procs" for d in diff.improvements)

    def test_speedup_drop_is_a_regression(self):
        diff = compare({"g": {"speedup": 10.0}}, {"g": {"speedup": 7.0}})
        assert [d.path for d in diff.regressions] == ["g.speedup"]

    def test_missing_and_added_never_gate(self):
        diff = compare({"g": {"fast_s": 1.0, "old_s": 2.0}},
                       {"g": {"fast_s": 1.0, "new_s": 3.0}})
        assert diff.missing == ["g.old_s"]
        assert diff.added == ["g.new_s"]
        assert check(diff)[0] == 0

    def test_check_exit_codes(self):
        clean = compare({"g": {"fast_s": 1.0}}, {"g": {"fast_s": 1.0}})
        assert check(clean)[0] == 0
        bad = compare({"g": {"fast_s": 1.0}}, {"g": {"fast_s": 1.5}})
        code, verdict = check(bad)
        assert code == 1 and "FAILED" in verdict

    def test_self_compare_of_committed_baselines_passes(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[1]
        for path in sorted(root.glob("BENCH_*.json")):
            doc = campaign.load_bench(path)
            diff = compare(doc, doc, path.name, path.name)
            assert check(diff)[0] == 0, path.name
            assert diff.deltas, f"{path.name} flattened to nothing"

    def test_injected_regression_fails_check(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[1]
        doc = campaign.load_bench(root / "BENCH_core.json")
        regressed = json.loads(json.dumps(doc))

        def inflate(node):
            for key, value in list(node.items()):
                if isinstance(value, dict):
                    inflate(value)
                elif key.endswith("_s") and \
                        isinstance(value, (int, float)) and \
                        not isinstance(value, bool):
                    node[key] = value * 1.25
        inflate(regressed)
        diff = compare(doc, regressed)
        assert check(diff)[0] == 1
        assert all(d.direction == "lower" for d in diff.regressions)

    def test_summary_mentions_worst_regression(self):
        diff = compare({"g": {"fast_s": 1.0}}, {"g": {"fast_s": 2.0}})
        text = diff.summary()
        assert "REGRESSION g.fast_s" in text
        assert "+100.0%" in text
