"""k-nearest-neighbor search kernels over k-d trees (extension).

kNN is the neighbor-search workload the RT-core repurposing literature
targets (RTNN, RT-kNNS); on a k-d tree the traversal alternates plane
comparisons (Query-Key-shaped) and distance tests (Point-to-Point-
shaped), so TTA covers it without TTA+'s programmability — an extension
demonstrating the §II-C generality claim on a structure the paper did
not evaluate.
"""

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3
from repro.gpu.isa import AccelCall, Compute
from repro.gpu.replay import launch_replayable, value_independent
from repro.kernels import common
from repro.kernels.common import epilogue, prologue, visit_header
from repro.rta.traversal import Step, TraversalJob
from repro.trees.kdtree import KDTree
from repro.trees.layout import NODE_STRIDE

#: plane delta + compare + descend select
_PLANE_ALU = 6
#: distance test + heap update per candidate
_CANDIDATE_ALU = 14


@dataclass
class KNNKernelArgs:
    tree: KDTree
    queries: Sequence[Vec3]
    k: int
    query_buf: int
    result_buf: int
    jobs: List[TraversalJob] = field(default_factory=list)
    results: dict = field(default_factory=dict)
    #: workload-owned recording cache for gpu/replay.py
    stream_cache: dict = None


@launch_replayable
@value_independent
def knn_baseline_kernel(tid: int, args: KNNKernelArgs):
    result = args.tree.knn(args.queries[tid], args.k)
    yield from prologue(args.query_buf + tid * 12, setup_alu=6)
    for visit in result.visits:
        yield from visit_header(visit.node.address, NODE_STRIDE)
        if visit.kind == "inner":
            yield Compute(_PLANE_ALU, common.TAG_INNER, kind="alu")
            yield Compute(3, common.TAG_INNER_NEXT, kind="control")
        else:
            for c in range(visit.tests):
                yield Compute(_CANDIDATE_ALU, common.TAG_LEAF + c,
                              kind="alu")
            yield Compute(3, common.TAG_LEAF_HIT, kind="control")
    yield from epilogue(args.result_buf + tid * 4 * args.k)
    args.results[tid] = result.ids


@launch_replayable
def knn_accel_kernel(tid: int, args: KNNKernelArgs):
    yield from prologue(args.query_buf + tid * 12, setup_alu=6)
    yield Compute(2, common.TAG_SETUP + 1, kind="alu")
    ids = yield AccelCall(args.jobs[tid], tag=common.TAG_SETUP + 2)
    yield from epilogue(args.result_buf + tid * 4 * args.k)
    args.results[tid] = ids


def build_knn_jobs(tree: KDTree, queries: Sequence[Vec3], k: int,
                   flavor: str = "tta") -> List[TraversalJob]:
    if flavor not in ("tta", "ttaplus"):
        raise ConfigurationError(
            f"kNN needs Query-Key/Point-to-Point support (got {flavor!r})"
        )
    jobs = []
    for qid, query in enumerate(queries):
        result = tree.knn(query, k)
        steps = []
        for visit in result.visits:
            if visit.kind == "inner":
                op = "query_key" if flavor == "tta" else "uop:knn_inner"
                steps.append(Step(visit.node.address, NODE_STRIDE, op))
            else:
                op = "point_dist" if flavor == "tta" else "uop:rtnn_leaf"
                steps.append(Step(visit.node.address, NODE_STRIDE, op,
                                  count=visit.tests))
        jobs.append(TraversalJob(qid, steps, result.ids))
    return jobs
