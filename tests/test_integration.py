"""End-to-end integration tests: every workload on every platform.

These runs are small but complete — workload generation, job lowering,
kernel launch, accelerator timing, functional verification against the
golden references (done inside the runners), and the paper's headline
*shapes* at smoke scale.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import (
    run_btree,
    run_lumibench,
    run_nbody,
    run_rtnn,
    run_wknd,
    scaled_config_for,
)
from repro.gpu.config import GPUConfig
from repro.workloads import (
    make_btree_workload,
    make_lumibench_workload,
    make_nbody_workload,
    make_rtnn_workload,
    make_wknd_workload,
)

RT_CFG = GPUConfig().with_overrides(l1_size=512, l2_size=4096, l2_assoc=8)


@pytest.fixture(scope="module")
def btree_wl():
    return make_btree_workload("btree", n_keys=2048, n_queries=2048, seed=1)


@pytest.fixture(scope="module")
def nbody_wl():
    return make_nbody_workload(n_bodies=256, dims=3, seed=2, theta=0.7)


@pytest.fixture(scope="module")
def rtnn_wl():
    return make_rtnn_workload(n_points=1024, n_queries=256, radius=1.0,
                              seed=3)


@pytest.fixture(scope="module")
def wknd_wl():
    return make_wknd_workload(width=8, height=8, n_spheres=120, bounces=1)


class TestBTreeEndToEnd:
    def test_all_platforms_verify_and_tta_wins(self, btree_wl):
        cfg = scaled_config_for(btree_wl.image.size_bytes)
        base = run_btree(btree_wl, "gpu", config=cfg)
        tta = run_btree(btree_wl, "tta", config=cfg)
        tp = run_btree(btree_wl, "ttaplus", config=cfg)
        assert tta.speedup_over(base) > 1.2
        assert tp.speedup_over(base) > 1.0
        # TTA+ trades a little performance for programmability.
        assert tp.cycles >= tta.cycles * 0.95

    def test_dram_utilization_roughly_doubles(self, btree_wl):
        cfg = scaled_config_for(btree_wl.image.size_bytes)
        base = run_btree(btree_wl, "gpu", config=cfg)
        tta = run_btree(btree_wl, "tta", config=cfg)
        assert tta.dram_utilization > 1.4 * base.dram_utilization

    def test_instruction_reduction_matches_fig20(self, btree_wl):
        cfg = scaled_config_for(btree_wl.image.size_bytes)
        base = run_btree(btree_wl, "gpu", config=cfg)
        tta = run_btree(btree_wl, "tta", config=cfg)
        reduction = 1 - (tta.stats.total_warp_instructions
                         / base.stats.total_warp_instructions)
        assert reduction > 0.85  # paper: ~91%
        tta_share = (tta.stats.warp_instructions.get("tta")
                     / tta.stats.total_warp_instructions)
        assert tta_share < 0.10  # paper: ~2%

    def test_bad_platform(self, btree_wl):
        with pytest.raises(ConfigurationError):
            run_btree(btree_wl, "rta")

    @pytest.mark.parametrize("variant", ["bstar", "bplus"])
    def test_variants_run_end_to_end(self, variant):
        wl = make_btree_workload(variant, n_keys=1024, n_queries=512, seed=4)
        base = run_btree(wl, "gpu")
        tta = run_btree(wl, "tta")
        assert tta.speedup_over(base) > 1.0


class TestNBodyEndToEnd:
    def test_platforms_and_speedup_band(self, nbody_wl):
        cfg = scaled_config_for(nbody_wl.image.size_bytes)
        base = run_nbody(nbody_wl, "gpu", config=cfg)
        tta = run_nbody(nbody_wl, "tta", config=cfg)
        tp = run_nbody(nbody_wl, "ttaplus", config=cfg)
        assert base.simt_efficiency > 0.9  # warp-voting keeps warps converged
        assert 0.9 < tta.speedup_over(base) < 6.0
        assert 0.8 < tp.speedup_over(base) < 6.0

    def test_fusion_improves_ttaplus(self, nbody_wl):
        cfg = scaled_config_for(nbody_wl.image.size_bytes)
        fused = run_nbody(nbody_wl, "ttaplus", config=cfg,
                          fused_post_insts=100)
        unfused = run_nbody(nbody_wl, "ttaplus", config=cfg)
        base_f = run_nbody(nbody_wl, "gpu", config=cfg,
                           fused_post_insts=100)
        # With post-processing in the picture, the accelerated version
        # overlaps it with traversal and gains more.
        gain_with_post = base_f.cycles / fused.cycles
        assert gain_with_post > 0.8


class TestRTNNEndToEnd:
    def test_all_five_platforms(self, rtnn_wl):
        cfg = scaled_config_for(rtnn_wl.image.size_bytes, pressure=20.0)
        runs = {p: run_rtnn(rtnn_wl, p, config=cfg)
                for p in ("gpu", "rta", "tta", "ttaplus", "ttaplus_opt")}
        # RTNN's ordering story: RTA beats CUDA; TTA beats RTA; the naive
        # TTA+ port slows down; *RTNN recovers.
        assert runs["rta"].cycles < runs["gpu"].cycles
        assert runs["tta"].cycles < runs["rta"].cycles
        assert runs["ttaplus"].cycles > runs["tta"].cycles
        assert runs["ttaplus_opt"].cycles < runs["ttaplus"].cycles


class TestRayTracingEndToEnd:
    def test_wknd_naive_slower_opt_recovers(self, wknd_wl):
        rta = run_wknd(wknd_wl, "rta", config=RT_CFG)
        naive = run_wknd(wknd_wl, "ttaplus", config=RT_CFG)
        opt = run_wknd(wknd_wl, "ttaplus_opt", config=RT_CFG)
        assert naive.cycles > rta.cycles          # naive port: slowdown
        assert opt.cycles < naive.cycles          # *WKND_PT improves

    def test_wknd_limit_study_orders(self, wknd_wl):
        normal = run_wknd(wknd_wl, "ttaplus_opt", config=RT_CFG)
        perf_rt = run_wknd(wknd_wl, "ttaplus_opt", config=RT_CFG,
                           perfect_node_fetch=True)
        perf_mem = run_wknd(wknd_wl, "ttaplus_opt", config=RT_CFG,
                            perfect_mem=True)
        assert perf_rt.cycles < normal.cycles
        assert perf_mem.cycles < normal.cycles

    def test_lumibench_ttaplus_modest_slowdown(self):
        wl = make_lumibench_workload("CORNELL_PT", width=8, height=8)
        rta = run_lumibench(wl, "rta", config=RT_CFG)
        tp = run_lumibench(wl, "ttaplus", config=RT_CFG)
        ratio = rta.cycles / tp.cycles
        assert 0.6 < ratio < 1.05  # paper: ~0.92 on average

    def test_lumibench_gpu_software_is_slowest(self):
        wl = make_lumibench_workload("BUNNY_SH", width=8, height=8)
        sw = run_lumibench(wl, "gpu", config=RT_CFG)
        rta = run_lumibench(wl, "rta", config=RT_CFG)
        assert rta.cycles < sw.cycles

    def test_bad_platform(self, wknd_wl):
        with pytest.raises(ConfigurationError):
            run_wknd(wknd_wl, "gpu")
