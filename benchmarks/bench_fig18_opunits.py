"""Fig. 18 — TTA+ OP-unit utilization and per-test intersection latency."""

from repro.harness import experiments


def test_fig18_opunits(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig18_opunits(scale), rounds=1, iterations=1)
    save_table("fig18_opunits", table)
    latencies = {(r[0], r[2]): r[3] for r in table.rows if r[1] == "latency"}
    utils = [(r[0], r[2], r[3]) for r in table.rows if r[1] == "util"]
    # Fig. 18 bottom: the µop Ray-Box is several times the 13-cycle
    # fixed-function latency (paper measures ~10x under load).
    raybox = [v for (wl, name), v in latencies.items() if name == "raybox"]
    assert raybox and all(v > 3 * 13 for v in raybox)
    # Short programs stay short: B-Tree leaf (3 µops) well under Ray-Box.
    if ("btree", "btree_leaf") in latencies:
        assert latencies[("btree", "btree_leaf")] < min(raybox)
    # Fig. 18 top: no unit saturates ("no significant bottlenecks").
    for wl, unit, util in utils:
        assert util < 0.95, f"{wl}/{unit} saturated at {util}"
    # Different applications exercise different units.
    used_by = {}
    for wl, unit, util in utils:
        used_by.setdefault(wl, set()).add(unit)
    assert used_by.get("btree", set()) != used_by.get("nbody3d", set())
