"""Spatial-index workloads: R-Tree range queries over geo-like data.

Rectangles follow a clustered "points of interest" distribution (dense
urban clusters plus scattered singletons); query windows are small
view-port-like rectangles.  The golden reference is a brute-force
overlap scan.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.aabb import AABB
from repro.kernels.rtree_query import RTreeKernelArgs, build_rtree_jobs
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import TraversalJob
from repro.trees.layout import TreeImage
from repro.trees.rtree import RectEntry, RTree, make_rect


@dataclass
class RTreeWorkload:
    tree: RTree
    entries: List[RectEntry]
    windows: List[AABB]
    image: TreeImage
    space: AddressSpace
    query_buf: int
    result_buf: int
    # Job lowering is pure per (tree, windows, flavor); cache it across
    # repeated runs of the same workload object.
    _jobs_cache: Dict[str, List[TraversalJob]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _stream_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False)
    #: bumped by every image refresh after structural mutation; the exec
    #: build cache refuses to persist a workload with nonzero epoch.
    mutation_epoch: int = field(default=0, init=False, compare=False)

    def kernel_args(self, jobs: Sequence[TraversalJob] = ()) -> RTreeKernelArgs:
        return RTreeKernelArgs(
            tree=self.tree,
            windows=self.windows,
            query_buf=self.query_buf,
            result_buf=self.result_buf,
            jobs=list(jobs),
            stream_cache=self._stream_cache,
        )

    def jobs(self, flavor: str) -> List[TraversalJob]:
        cached = self._jobs_cache.get(flavor)
        if cached is None:
            cached = self._jobs_cache[flavor] = build_rtree_jobs(
                self.tree, self.windows, flavor=flavor)
        return cached

    @property
    def n_queries(self) -> int:
        return len(self.windows)

    def golden(self, window: AABB) -> Tuple[int, ...]:
        out = []
        for entry in self.entries:
            rect = entry.rect
            if (rect.lo.x <= window.hi.x and window.lo.x <= rect.hi.x
                    and rect.lo.y <= window.hi.y
                    and window.lo.y <= rect.hi.y):
                out.append(entry.data_id)
        return tuple(sorted(out))


def make_rtree_workload(n_rects: int = 8192, n_queries: int = 1024,
                        seed: int = 0, span: float = 1000.0,
                        window_size: float = 12.0, n_clusters: int = 32,
                        churn: Optional[str] = None) -> RTreeWorkload:
    """Clustered rectangles + small query windows, STR bulk-loaded.

    ``churn`` (``<mix>@<writes>``) pre-ages the tree with a seeded
    write burst before serving — see :mod:`repro.mutation`.
    """
    if n_rects < 4:
        raise ConfigurationError("need at least 4 rectangles")
    rng = random.Random(seed)
    clusters = [(rng.uniform(0, span), rng.uniform(0, span))
                for _ in range(n_clusters)]
    entries: List[RectEntry] = []
    for i in range(n_rects):
        if rng.random() < 0.8:
            cx, cy = clusters[rng.randrange(n_clusters)]
            x = rng.gauss(cx, span / 40)
            y = rng.gauss(cy, span / 40)
        else:
            x, y = rng.uniform(0, span), rng.uniform(0, span)
        w, h = rng.uniform(0.2, 4.0), rng.uniform(0.2, 4.0)
        entries.append(RectEntry(make_rect(x, y, x + w, y + h), i))

    tree = RTree.bulk_load(entries)
    windows = []
    for _ in range(n_queries):
        # Window centers biased toward clusters, like map viewports.
        if rng.random() < 0.7:
            cx, cy = clusters[rng.randrange(n_clusters)]
            x = rng.gauss(cx, span / 30)
            y = rng.gauss(cy, span / 30)
        else:
            x, y = rng.uniform(0, span), rng.uniform(0, span)
        windows.append(make_rect(x, y, x + window_size, y + window_size))

    space = AddressSpace()
    image = space.place_tree(tree.nodes())
    query_buf = space.alloc(16 * n_queries, align=128)
    result_buf = space.alloc(4 * n_queries, align=128)
    workload = RTreeWorkload(tree, entries, windows, image, space,
                             query_buf, result_buf)
    if churn is not None:
        from repro.mutation import apply_churn
        apply_churn(workload, "range", churn, seed=seed + 7)
    return workload
