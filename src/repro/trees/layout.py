"""Address assignment: serialize a tree into a flat memory image.

The timing models need real addresses — cache behaviour, coalescing and
DRAM traffic all depend on where nodes live.  ``TreeImage`` lays a
tree's nodes out in breadth-first order (the order real tree builders
emit, giving siblings contiguity, which the paper's child-offset
encoding relies on) at a fixed per-node stride, and maps addresses back
to node objects for the functional side of the simulation.
"""

from typing import Dict, Iterable, List, Optional

from repro.errors import LayoutError

NODE_STRIDE = 64  # bytes per node entry: 16 x 32-bit registers (Fig. 7)


class TreeImage:
    """A serialized tree: node list, addresses, and reverse lookup.

    ``base`` offsets the whole tree in the global address space so
    several structures (tree + query buffers + result buffers) can
    coexist in one memory image.
    """

    def __init__(self, nodes: Iterable, base: int = 0,
                 node_stride: int = NODE_STRIDE):
        if base % node_stride != 0:
            raise LayoutError(
                f"base {base} not aligned to node stride {node_stride}"
            )
        self.node_stride = node_stride
        self.base = base
        self.nodes: List = list(nodes)
        if not self.nodes:
            raise LayoutError("cannot lay out an empty tree")
        self._addr_of: Dict[int, int] = {}
        self._node_at: Dict[int, object] = {}
        for index, node in enumerate(self.nodes):
            address = base + index * node_stride
            node.address = address
            self._addr_of[id(node)] = address
            self._node_at[address] = node

    @property
    def size_bytes(self) -> int:
        return len(self.nodes) * self.node_stride

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def address_of(self, node) -> int:
        try:
            return self._addr_of[id(node)]
        except KeyError:
            raise LayoutError(f"node {node!r} is not part of this image")

    def node_at(self, address: int) -> object:
        try:
            return self._node_at[address]
        except KeyError:
            raise LayoutError(f"no node at address {address:#x}")

    def contains(self, address: int) -> bool:
        return address in self._node_at

    def first_child_address(self, node) -> Optional[int]:
        """Address of the node's first child (the paper's child-offset base)."""
        children = getattr(node, "children", None) or []
        children = [c for c in children if c is not None]
        if not children:
            return None
        return self.address_of(children[0])

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"TreeImage(nodes={len(self.nodes)}, base={self.base:#x}, "
            f"stride={self.node_stride})"
        )
