"""Tests for the workload inspection helpers."""

import pytest

from repro.harness.inspectors import (
    job_visit_counts,
    traversal_profile,
    tree_shape,
)
from repro.trees import BTree, BVH, RTree
from repro.trees.rtree import RectEntry, make_rect


class TestTreeShape:
    def test_btree_shape(self):
        tree = BTree.bulk_load(list(range(2000)))
        shape = tree_shape(tree)
        assert shape.n_nodes == len(tree.nodes())
        assert shape.height == tree.height()
        assert 2 <= shape.mean_fanout <= 9
        assert sum(shape.fill_histogram.values()) == \
            shape.n_nodes - shape.n_leaves
        assert "height" in shape.format()

    def test_bvh_shape_binary(self):
        from tests.test_bvh import random_triangles
        bvh = BVH(random_triangles(100, seed=1))
        shape = tree_shape(bvh)
        assert shape.mean_fanout == pytest.approx(2.0)
        assert shape.n_leaves + sum(shape.fill_histogram.values()) == \
            shape.n_nodes

    def test_rtree_shape(self):
        entries = [RectEntry(make_rect(i, i, i + 1, i + 1), i)
                   for i in range(300)]
        shape = tree_shape(RTree.bulk_load(entries))
        assert shape.n_leaves >= 300 / 9


class TestTraversalProfile:
    def test_statistics(self):
        profile = traversal_profile([4, 4, 4, 8], warp_size=2)
        assert profile.mean_visits == 5.0
        assert (profile.min_visits, profile.max_visits) == (4, 8)
        # Warps (4,4) and (4,8): padded = 8 + 16 = 24; total = 20.
        assert profile.warp_tail_efficiency == pytest.approx(20 / 24)

    def test_uniform_counts_are_fully_efficient(self):
        profile = traversal_profile([5] * 64)
        assert profile.warp_tail_efficiency == 1.0
        assert profile.p95_visits == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            traversal_profile([])

    def test_from_jobs(self):
        from repro.workloads import make_btree_workload
        wl = make_btree_workload("btree", n_keys=512, n_queries=256, seed=2)
        counts = job_visit_counts(wl.jobs("tta"))
        assert len(counts) == 256
        profile = traversal_profile(counts)
        assert profile.max_visits <= wl.tree.height()
        assert "warp_tail_eff" in profile.format()

    def test_btree_less_uniform_than_bplus(self):
        from repro.workloads import make_btree_workload
        b = make_btree_workload("btree", n_keys=4096, n_queries=512, seed=3)
        bp = make_btree_workload("bplus", n_keys=4096, n_queries=512, seed=3)
        eff_b = traversal_profile(job_visit_counts(b.jobs("tta")))
        eff_bp = traversal_profile(job_visit_counts(bp.jobs("tta")))
        # B+Tree searches always reach leaf depth: perfectly uniform.
        assert eff_bp.warp_tail_efficiency == 1.0
        assert eff_b.warp_tail_efficiency <= eff_bp.warp_tail_efficiency
