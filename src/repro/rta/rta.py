"""The accelerator core: admission, traversal replay, shader bounces.

``RTACore`` is attached to an SM and receives work through
``submit(now, jobs)`` (the :class:`~repro.gpu.isa.AccelCall` path).
Each job walks the same state machine:

1. wait for a warp-buffer ray slot,
2. for each step: fetch the node through the RTA memory scheduler,
   then execute the step's operation on the backend (fixed-function
   pools for RTA/TTA, µop programs for TTA+),
3. ``shader`` steps suspend the traversal and occupy the host SM's
   issue port — the expensive intersection-shader bounce that the
   baseline needs for procedural geometry and that TTA+ eliminates.

On the fast engine the state machine is driven directly (the *batched*
path): one launch event admits a whole submission, resource completion
times are computed analytically, and all jobs waking at the same cycle
advance from a single drain event — a per-(core, cycle) wake bucket
instead of one heap event per query per step.  Under the legacy heap
engine (``REPRO_SIM_CORE=legacy``) each job runs as its own generator
process, exactly as the seed engine did.

The submission's signal fires when all of its jobs complete, resuming
the launching warp.
"""

import os
from collections import deque
from typing import Iterable, List

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation
from repro.rta.mem_scheduler import RTAMemScheduler
from repro.rta.traversal import Step, TraversalJob
from repro.rta.units import FixedFunctionBackend
from repro.rta.warp_buffer import WarpBuffer
from repro.sim.engine import TIME_EPS, ceil_cycles
from repro.sim.stats import LatencySampler

#: Fixed cost of suspending a traversal and scheduling shader threads on
#: the SM (launch + result return), in cycles each way.
SHADER_HANDOFF_CYCLES = 40


class _Batch:
    """One submission: completion countdown plus the signal to fire."""

    __slots__ = ("remaining", "signal", "jobs")

    def __init__(self, remaining, signal, jobs):
        self.remaining = remaining
        self.signal = signal
        self.jobs = jobs


class _JobTable:
    """Struct-of-arrays traversal state for the batched driver.

    One preallocated table per core replaces the per-job ``_JobRun``
    objects: each in-flight traversal is a *slot* (an int) indexing
    parallel columns.  ``at`` is the job's *analytic* clock: engine
    wake-ups are quantized to whole cycles, but the traversal chains its
    resource completion times in exact float time (just like the legacy
    per-job generator, which resumed at the float timestamp directly),
    so rounding never compounds across steps.

    Slots recycle through a free list and capacity grows geometrically,
    so a submission of 10^4 jobs allocates O(1) Python objects beyond
    the job/step references it must hold.  ``release`` only returns the
    slot to the free list — object references and the ``done`` latch
    survive until the slot's next ``acquire``, which keeps
    duplicate-completion diagnostics (query id, batch) readable.
    """

    __slots__ = ("capacity", "idx", "n_steps", "at", "begin", "fetched",
                 "done", "job", "steps", "batch", "chain", "free")

    _COLUMNS = (("idx", np.int32), ("n_steps", np.int32),
                ("at", np.float64), ("begin", np.float64),
                ("fetched", np.bool_), ("done", np.bool_))

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        for name, dtype in self._COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=dtype))
        self.job: List = [None] * capacity
        self.steps: List = [None] * capacity
        self.batch: List = [None] * capacity
        self.chain: List = [None] * capacity
        # pop() takes from the tail, so low slots go out first.
        self.free: List[int] = list(range(capacity - 1, -1, -1))

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name, dtype in self._COLUMNS:
            grown = np.zeros(new, dtype=dtype)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        self.job.extend([None] * old)
        self.steps.extend([None] * old)
        self.batch.extend([None] * old)
        self.chain.extend([None] * old)
        self.free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def acquire(self, job, batch, begin: float) -> int:
        if not self.free:
            self._grow()
        slot = self.free.pop()
        self.job[slot] = job
        self.steps[slot] = job.steps
        self.batch[slot] = batch
        self.chain[slot] = None  # in-flight TTA+ µop chain, if any
        self.idx[slot] = 0
        self.n_steps[slot] = len(job.steps)
        self.at[slot] = begin
        self.begin[slot] = begin
        self.fetched[slot] = False  # current step's node fetch completed
        self.done[slot] = False  # completion latch (at-most-once)
        return slot

    def release(self, slot: int) -> None:
        self.free.append(slot)


#: A same-cycle wake bucket at least this large classifies its woken
#: jobs (finished vs. still stepping) with one vectorized column read.
_VEC_DRAIN_MIN = 8


class RTACore:
    """One accelerator instance (RTA, TTA, or TTA+ depending on backend).

    ``prefetch_depth`` models a treelet prefetcher [16]: while a node is
    being processed, the next ``prefetch_depth`` node fetches of the
    same traversal are issued ahead of time, overlapping their memory
    latency with the current intersection test (one of the
    "architectural improvements" §V-B says compose with TTA+).
    """

    def __init__(self, sm, backend, prefetch_depth: int = 0):
        self.sm = sm
        self.sim = sm.sim
        self.config = sm.config
        self.backend = backend
        self.prefetch_depth = prefetch_depth
        self.warp_buffer = WarpBuffer(self.sim,
                                      self.config.warp_buffer_warps,
                                      self.config.warp_size)
        self.mem = RTAMemScheduler(self.sim, sm.hierarchy, sm.l1,
                                   self.config.mem_scheduler_reqs_per_cycle)
        self.traversal_latency = LatencySampler()
        self.jobs_completed = 0
        self.jobs_launched = 0
        self.steps_advanced = 0  # guard progress counter (monotone)
        self.shader_bounces = 0
        self.shader_cycles = 0.0
        self._busy_jobs = 0
        self._legacy = getattr(self.sim, "legacy_core", False)
        self._chained = hasattr(backend, "begin_chain")
        # Cached tracer (repro.obs); job-phase events ("node_fetch",
        # "shader", "job_done") are emitted here, per-op unit events by
        # the backend's pools.
        self.trace = getattr(self.sim, "tracer", None)
        self._unit = f"rta{sm.sm_id}"
        self._admit_queue = deque()  # table slots awaiting a warp-buffer slot
        self._jobs = _JobTable()
        self._wake: dict = {}  # cycle -> [slot, ...] awaiting that cycle
        self._pending: set = set()  # query ids launched but not completed
        # Fault injectors wrap `_advance_job` per instance; the vectorized
        # drain fast-path would route finishing jobs around that wrapper,
        # so it is disabled whenever faults are armed.
        self._vec_drain = not os.environ.get("REPRO_FAULTS")
        if os.environ.get("REPRO_FAULTS"):
            from repro.guard.faults import install_env_faults
            install_env_faults(self)

    # -- submission interface (matches gpu.sm expectations) ---------------------
    def submit(self, now: float, jobs: Iterable[TraversalJob]):
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("empty accelerator submission")
        self.jobs_launched += len(jobs)
        self._pending.update(job.query_id for job in jobs)
        done_signal = self.sim.signal()
        launch_at = now + self.config.rta_issue_overhead
        if self._legacy:
            state = {"remaining": len(jobs)}
            for job in jobs:
                self.sim.call_at(launch_at, self._start_job, job, state,
                                 done_signal, jobs)
        else:
            batch = _Batch(len(jobs), done_signal, jobs)
            self.sim.call_at(launch_at, self._launch_batch, batch)
        return done_signal

    # -- batched driver (fast engine) --------------------------------------------
    def _launch_batch(self, batch: _Batch) -> None:
        now = self.sim.now
        warp_buffer = self.warp_buffer
        queue = self._admit_queue
        advance = self._advance_job
        acquire = self._jobs.acquire
        for job in batch.jobs:
            slot = acquire(job, batch, now)
            if queue or not warp_buffer.try_admit(now):
                queue.append(slot)
            else:
                warp_buffer.record_access(writes=1)  # install ray state
                advance(slot)

    def _advance_job(self, slot: int) -> None:
        self.steps_advanced += 1
        jobs = self._jobs
        backend = self.backend
        warp_buffer = self.warp_buffer
        fetch = self.mem.fetch
        wake_at = self._wake_at
        chains = jobs.chain
        steps = jobs.steps[slot]
        n_steps = len(steps)
        chained = self._chained
        prefetch_depth = self.prefetch_depth
        obs = self.trace
        unit = self._unit
        # Hot state lives in Python locals for the whole advance; the
        # table columns are written back only when the job parks.  The
        # analytic clock ``at`` is constant within one advance (only
        # ``_wake_at`` moves it), so it is read exactly once.
        now = float(jobs.at[slot])
        idx = int(jobs.idx[slot])
        fetched = bool(jobs.fetched[slot])
        while True:
            chain = chains[slot]
            if chain is not None:
                wake = backend.advance_chain(chain, now)
                if wake is not None:
                    jobs.idx[slot] = idx
                    wake_at(wake, slot)
                    return
                chains[slot] = None
                idx += 1
                continue
            if idx >= n_steps:
                break
            step = steps[idx]
            if not fetched:
                # Fetch the node, then *park until the data arrives* before
                # touching the backend: issuing the op at the (future)
                # fetch-completion time from within the current event
                # would acquire the FIFO unit timelines out of arrival
                # order and distort contention for every other job.
                address = step.address
                if address >= 0:
                    if prefetch_depth:
                        for ahead in steps[idx + 1: idx + 1 + prefetch_depth]:
                            if ahead.address >= 0:
                                fetch(now, ahead.address, ahead.size)
                    ready = fetch(now, address, step.size)
                else:
                    ready = now
                warp_buffer.record_access(reads=2, writes=1)
                if ready > now:
                    if obs is not None:
                        obs.emit("rta", unit, "node_fetch", now, ready - now,
                                 jobs.job[slot].query_id)
                    jobs.idx[slot] = idx
                    jobs.fetched[slot] = True
                    wake_at(ready, slot)
                    return
            fetched = False
            op = step.op
            if op == "shader":
                finish = self._shader_finish_at(now, step)
                if obs is not None:
                    obs.emit("rta", unit, "shader", now, finish - now,
                             jobs.job[slot].query_id)
                jobs.idx[slot] = idx + 1
                jobs.fetched[slot] = False
                wake_at(finish, slot)
                return
            if chained:
                chain = backend.begin_chain(op, step.count)
                wake = backend.advance_chain(chain, now)
                if wake is not None:
                    chains[slot] = chain
                    jobs.idx[slot] = idx
                    jobs.fetched[slot] = False
                    wake_at(wake, slot)
                    return
                idx += 1
                continue
            done = backend.finish_at(now, op, step.count)
            idx += 1
            if done > now:
                jobs.idx[slot] = idx
                jobs.fetched[slot] = False
                wake_at(done, slot)
                return
        jobs.idx[slot] = idx
        jobs.fetched[slot] = fetched
        self._finish_job(slot)

    def _wake_at(self, time, slot: int) -> None:
        """Park the job in ``slot`` until (the ceiling cycle of) ``time``.

        All jobs of this core waking at one cycle share a single engine
        event: whole warps of same-latency queries advance per drain.
        The job resumes with its ``at`` column set to the exact float
        ``time``, so quantization affects only event scheduling, not the
        model.
        """
        self._jobs.at[slot] = time
        sim = self.sim
        now = sim.now
        # ceil_cycles(time - now), inlined: this runs once or twice per
        # step of every traversal in every accelerated run.
        delta = time - now
        if delta <= 0:
            cycle = now
        else:
            whole = int(delta)
            cycle = now + (whole if delta - whole <= TIME_EPS else whole + 1)
        bucket = self._wake.get(cycle)
        if bucket is None:
            self._wake[cycle] = [slot]
            sim.call_at(cycle, self._drain_wake, cycle)
        else:
            bucket.append(slot)

    def _drain_wake(self, cycle: int) -> None:
        slots = self._wake.pop(cycle)
        advance = self._advance_job
        if len(slots) < _VEC_DRAIN_MIN or not self._vec_drain:
            for slot in slots:
                advance(slot)
            return
        # Vectorized step evaluation: classify every woken job in one
        # column read.  A job whose step cursor has run off the end (and
        # has no µop chain in flight) only re-enters `_advance_job` to
        # fall straight through to `_finish_job`; taking it there
        # directly is observably identical, including the progress
        # counter, which counts this final (empty) advance either way.
        arr = np.fromiter(slots, dtype=np.int64, count=len(slots))
        jobs = self._jobs
        finishing = (jobs.idx[arr] >= jobs.n_steps[arr]).tolist()
        chains = jobs.chain
        finish = self._finish_job
        for slot, fin in zip(slots, finishing):
            if fin and chains[slot] is None:
                self.steps_advanced += 1
                finish(slot)
            else:
                advance(slot)

    def _finish_job(self, slot: int) -> None:
        jobs = self._jobs
        if jobs.done[slot]:
            # At-most-once completion: a duplicated finish would vacate
            # a warp-buffer slot twice and double-count the batch.
            diagnostics = {"reason": "duplicate-completion",
                           "cycle": self.sim.now}
            diagnostics.update(self.guard_state())
            raise InvariantViolation(
                f"job {jobs.job[slot].query_id} completed twice on "
                f"sm{self.sm.sm_id}'s accelerator",
                diagnostics,
            )
        jobs.done[slot] = True
        now = float(jobs.at[slot])  # analytic completion time (≤ the cycle)
        warp_buffer = self.warp_buffer
        warp_buffer.vacate(now)
        if self.trace is not None:
            self.trace.emit("rta", self._unit, "job_done", now, 0.0,
                            jobs.job[slot].query_id)
        self.traversal_latency.sample(now - float(jobs.begin[slot]))
        self.jobs_completed += 1
        self._pending.discard(jobs.job[slot].query_id)
        batch = jobs.batch[slot]
        batch.remaining -= 1
        if batch.remaining == 0:
            batch.signal.fire([j.result for j in batch.jobs])
        jobs.release(slot)
        queue = self._admit_queue
        if queue and warp_buffer.try_admit(now):
            nxt = queue.popleft()
            jobs.at[nxt] = now  # the freed slot is taken at the release time
            warp_buffer.record_access(writes=1)
            self._advance_job(nxt)

    def _shader_finish_at(self, now, step: Step):
        """Analytic intersection-shader bounce (see :meth:`_run_shader`)."""
        warp_size = self.config.warp_size
        insts = step.shader_insts * step.count
        self.shader_bounces += step.count
        start = self.sm.issue_port.acquire(
            now + SHADER_HANDOFF_CYCLES,
            max(1.0, insts / warp_size))
        done = max(start + insts, now + insts) + 2 * SHADER_HANDOFF_CYCLES
        self.shader_cycles += done - now
        # Warp-batched: this ray's share of the shader warp's instructions.
        self.sm.stats.count_compute("shader", insts / warp_size, warp_size,
                                    warp_size)
        return done

    # -- per-job processes (legacy heap engine) -----------------------------------
    def _start_job(self, job: TraversalJob, state: dict, done_signal,
                   jobs: List[TraversalJob]) -> None:
        self.sim.spawn(self._run_job(job, state, done_signal, jobs))

    def _run_job(self, job: TraversalJob, state: dict, done_signal,
                 jobs: List[TraversalJob]):
        sim = self.sim
        begin = sim.now
        obs = self.trace
        unit = self._unit
        yield from self.warp_buffer.acquire()
        self.warp_buffer.record_access(writes=1)  # install ray state
        for index, step in enumerate(job.steps):
            if step.address >= 0:
                if self.prefetch_depth:
                    for ahead in job.steps[index + 1:
                                           index + 1 + self.prefetch_depth]:
                        if ahead.address >= 0:
                            self.mem.fetch(sim.now, ahead.address,
                                           ahead.size)
                ready = self.mem.fetch(sim.now, step.address, step.size)
                if ready > sim.now:
                    if obs is not None:
                        obs.emit("rta", unit, "node_fetch", sim.now,
                                 ready - sim.now, job.query_id)
                    yield ready - sim.now
            self.warp_buffer.record_access(reads=2, writes=1)
            self.steps_advanced += 1
            if step.op == "shader":
                shader_from = sim.now
                yield from self._run_shader(step)
                if obs is not None:
                    obs.emit("rta", unit, "shader", shader_from,
                             sim.now - shader_from, job.query_id)
            else:
                yield from self.backend.execute(sim.now, step.op, step.count)
        self.warp_buffer.release()
        if obs is not None:
            obs.emit("rta", unit, "job_done", sim.now, 0.0, job.query_id)
        self.traversal_latency.sample(sim.now - begin)
        self.jobs_completed += 1
        self._pending.discard(job.query_id)
        state["remaining"] -= 1
        if state["remaining"] == 0:
            done_signal.fire([j.result for j in jobs])

    def _run_shader(self, step: Step):
        """Bounce to the SM cores for an intersection shader invocation.

        The driver batches shader invocations from many suspended rays
        into full warps, so the *issue-port* cost is amortized across the
        warp width, while the suspended ray still waits for the handoff
        plus the scalar shader execution.
        """
        sim = self.sim
        warp_size = self.config.warp_size
        insts = step.shader_insts * step.count
        self.shader_bounces += step.count
        start = self.sm.issue_port.acquire(
            sim.now + SHADER_HANDOFF_CYCLES,
            max(1.0, insts / warp_size))
        done = max(start + insts, sim.now + insts) + 2 * SHADER_HANDOFF_CYCLES
        self.shader_cycles += done - sim.now
        # Warp-batched: this ray's share of the shader warp's instructions.
        self.sm.stats.count_compute("shader", insts / warp_size, warp_size,
                                    warp_size)
        yield done - sim.now

    # -- guard interface ----------------------------------------------------------
    def guard_state(self) -> dict:
        """JSON-serializable occupancy snapshot for diagnostic bundles."""
        state = {
            "sm": self.sm.sm_id,
            "jobs_launched": self.jobs_launched,
            "jobs_completed": self.jobs_completed,
            "in_flight": self.jobs_launched - self.jobs_completed,
            "steps_advanced": self.steps_advanced,
            "stuck_jobs": sorted(self._pending)[:16],
            "admit_queue": len(self._admit_queue),
            "wake_buckets": {str(cycle): len(runs)
                             for cycle, runs in sorted(self._wake.items())[:16]},
        }
        state.update(self.warp_buffer.guard_state())
        return state

    def guard_parked(self, now, park_cycles: int):
        """Describe work parked past its budget, or None.

        A wake bucket whose cycle has already passed means its drain
        event was dropped — flagged regardless of budget.  A job at the
        head of the admission queue is allowed to wait ``park_cycles``
        (legitimate under a saturated warp buffer) before being flagged.
        """
        if self._wake:
            stale = min(self._wake)
            if stale < now:
                return (f"accelerator sm{self.sm.sm_id}: wake bucket at "
                        f"cycle {stale} ({len(self._wake[stale])} job(s)) "
                        f"was never drained (now={now})")
        if self._admit_queue:
            head = self._admit_queue[0]
            waited = now - float(self._jobs.begin[head])
            if waited > park_cycles:
                return (f"accelerator sm{self.sm.sm_id}: job "
                        f"{self._jobs.job[head].query_id} parked in the "
                        f"admission queue for {waited:.0f} cycles "
                        f"(budget {park_cycles})")
        return None

    # -- statistics ---------------------------------------------------------------
    def snapshot(self, end: float) -> dict:
        snap = {
            "jobs_completed": self.jobs_completed,
            "traversal_latency_mean": self.traversal_latency.mean,
            "shader_bounces": self.shader_bounces,
            "shader_cycles": self.shader_cycles,
        }
        snap.update(self.warp_buffer.snapshot(end))
        snap.update(self.mem.snapshot(end))
        snap.update(self.backend.snapshot(end))
        return snap


def make_rta_factory(tta: bool = False, latency_overrides=None,
                     prefetch_depth: int = 0):
    """Factory for attaching a baseline RTA (or TTA) to every SM.

    Use with :class:`repro.gpu.GPU`::

        gpu = GPU(config, accelerator_factory=make_rta_factory(tta=True))
    """

    def factory(sm):
        backend = FixedFunctionBackend(sm.sim, sm.config, tta=tta,
                                       latency_overrides=latency_overrides)
        return RTACore(sm, backend, prefetch_depth=prefetch_depth)

    # Value identity for launch-level replay (gpu/replay.py): two
    # factories built from equal parameters configure identical cores.
    factory.replay_fingerprint = (
        "rta", tta,
        tuple(sorted(latency_overrides.items())) if latency_overrides else (),
        prefetch_depth,
    )
    return factory
