"""A small 3-component float vector.

Kept deliberately simple (plain attributes, eager arithmetic) because the
simulator calls these operations millions of times; anything fancier
costs real wall-clock time.
"""

import math


class Vec3:
    """Immutable-by-convention 3D vector of Python floats."""

    __slots__ = ("x", "y", "z")

    def __init__(self, x: float = 0.0, y: float = 0.0, z: float = 0.0):
        self.x = float(x)
        self.y = float(y)
        self.z = float(z)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        inv = 1.0 / scalar
        return Vec3(self.x * inv, self.y * inv, self.z * inv)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Vec3)
            and self.x == other.x
            and self.y == other.y
            and self.z == other.z
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.z))

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z

    def __repr__(self) -> str:
        return f"Vec3({self.x}, {self.y}, {self.z})"

    # -- metrics ----------------------------------------------------------
    def length_squared(self) -> float:
        return self.x * self.x + self.y * self.y + self.z * self.z

    def length(self) -> float:
        return math.sqrt(self.length_squared())

    def normalized(self) -> "Vec3":
        n = self.length()
        if n == 0.0:
            raise ValueError("cannot normalize zero vector")
        return self / n

    def min_with(self, other: "Vec3") -> "Vec3":
        return Vec3(min(self.x, other.x), min(self.y, other.y), min(self.z, other.z))

    def max_with(self, other: "Vec3") -> "Vec3":
        return Vec3(max(self.x, other.x), max(self.y, other.y), max(self.z, other.z))

    def component(self, axis: int) -> float:
        if axis == 0:
            return self.x
        if axis == 1:
            return self.y
        if axis == 2:
            return self.z
        raise IndexError(f"axis {axis} out of range")


def dot(a: Vec3, b: Vec3) -> float:
    """Dot product — the functional model of the RTA DOT unit."""
    return a.x * b.x + a.y * b.y + a.z * b.z


def cross(a: Vec3, b: Vec3) -> Vec3:
    """Cross product — the functional model of the RTA CROSS unit."""
    return Vec3(
        a.y * b.z - a.z * b.y,
        a.z * b.x - a.x * b.z,
        a.x * b.y - a.y * b.x,
    )
