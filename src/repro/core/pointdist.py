"""The Point-to-Point distance datapath in the Ray-Triangle unit.

TTA routes Algorithm 2 through the Ray-Triangle pipeline's existing
silicon (Fig. 8 (2)): the vector subtractor computes ``b - a``, a dot
product squares it, a scalar multiplier squares the threshold, and a
comparator produces the boolean.  This module is that datapath as a
functional unit, expressed with exactly those four operations.
"""

from typing import NamedTuple

from repro.geometry.vec import Vec3, dot


class PointDistanceResult(NamedTuple):
    below: bool           # |b - a| < threshold (Algorithm 2's output)
    distance_squared: float


class PointDistanceUnit:
    """Functional model of the added Ray-Triangle datapath."""

    def test(self, point_a: Vec3, point_b: Vec3,
             threshold: float) -> PointDistanceResult:
        dis = point_b - point_a          # vector subtractor stage
        dis2 = dot(dis, dis)             # dot-product stage
        threshold2 = threshold * threshold  # scalar multiplier stage
        return PointDistanceResult(dis2 < threshold2, dis2)  # comparator
