#!/usr/bin/env python3
"""Quickstart: accelerate B-Tree search with the TTA programming model.

Mirrors Listing 1 of the paper: configure the data layouts
(DecodeR/DecodeI/DecodeL), the intersection tests (ConfigI/ConfigL) and
the termination condition, then launch the traversal with
``traverse_tree_tta`` and compare against the software baseline.

Run:  python examples/quickstart.py
"""

from repro.core import TTAPipeline
from repro.core.api import traverse_tree_tta, vk_create_tta_pipeline
from repro.core.layouts import btree_node_layout, btree_query_layout
from repro.gpu import GPU
from repro.harness.runner import scaled_config_for
from repro.kernels.btree_search import (
    btree_accel_kernel,
    btree_baseline_kernel,
)
from repro.workloads import make_btree_workload


def main() -> None:
    # 1. Build a 9-wide B-Tree with 16k keys and 8k random queries.
    workload = make_btree_workload("btree", n_keys=16_384, n_queries=8_192,
                                   seed=42)
    config = scaled_config_for(workload.image.size_bytes)
    print(f"tree: {len(workload.tree.nodes())} nodes, "
          f"height {workload.tree.height()}, "
          f"{workload.image.size_bytes // 1024} KiB")

    # 2. Baseline: the while-loop search on the SIMT cores.
    args = workload.kernel_args()
    base = GPU(config).launch(btree_baseline_kernel, workload.n_queries,
                              args=args)
    print(f"baseline GPU : {base.cycles:10.0f} cycles  "
          f"SIMT eff {base.simt_efficiency:.2f}  "
          f"DRAM util {base.dram_utilization:.2f}")

    # 3. TTA: configure the pipeline exactly as Listing 1 does.
    pipeline = TTAPipeline(flavor="tta")
    pipeline.decode_r(btree_query_layout())      # DecodeR
    pipeline.decode_i(btree_node_layout())       # DecodeI
    pipeline.decode_l(btree_node_layout())       # DecodeL
    pipeline.config_i("query_key")               # ConfigI
    pipeline.config_l("query_key")               # ConfigL
    pipeline.config_terminate("ray", offset=8, dtype="u32",
                              program="leaf", pc=2)
    vk_create_tta_pipeline(pipeline)

    # 4. Launch: one traverseTreeTTA instruction per query.
    accel_args = workload.kernel_args(jobs=workload.jobs("tta"))
    tta = traverse_tree_tta(pipeline, btree_accel_kernel,
                            workload.n_queries, args=accel_args,
                            config=config)
    print(f"TTA          : {tta.cycles:10.0f} cycles  "
          f"speedup {base.cycles / tta.cycles:.2f}x  "
          f"DRAM util {tta.dram_utilization:.2f}")

    # 5. Same pipeline, TTA+ flavor: the µop programs of Table III.
    plus = TTAPipeline(flavor="ttaplus")
    plus.decode_r(btree_query_layout())
    plus.decode_i(btree_node_layout())
    plus.decode_l(btree_node_layout())
    plus.config_i("btree_inner")
    plus.config_l("btree_leaf")
    plus_args = workload.kernel_args(jobs=workload.jobs("ttaplus"))
    ttaplus = traverse_tree_tta(plus, btree_accel_kernel,
                                workload.n_queries, args=plus_args,
                                config=config)
    print(f"TTA+         : {ttaplus.cycles:10.0f} cycles  "
          f"speedup {base.cycles / ttaplus.cycles:.2f}x")

    # 6. All three computed identical answers.
    assert args.results == accel_args.results == plus_args.results
    found = sum(1 for v in accel_args.results.values() if v)
    print(f"verified: {found}/{workload.n_queries} queries found, "
          "all platforms agree")

    reduction = 1 - tta.total_warp_instructions / base.total_warp_instructions
    print(f"dynamic instructions eliminated by offload: {reduction:.0%} "
          "(paper: ~91%)")


if __name__ == "__main__":
    main()
