"""Result tables: the rows/series the paper's figures report."""

import csv
import io
import json
import math
import warnings
from typing import Iterable, List, Sequence


def geomean(values: Iterable[float], strict: bool = False) -> float:
    """Geometric mean of the positive entries of ``values``.

    Non-positive (or NaN) entries cannot enter a geometric mean; they
    are dropped, but never silently: a zero-cycle bug upstream must not
    masquerade as a clean speedup summary.  Dropping emits a
    ``RuntimeWarning``; under ``strict=True`` it raises instead.
    """
    values = list(values)
    kept = [v for v in values if v > 0]
    if len(kept) != len(values):
        dropped = len(values) - len(kept)
        message = (f"geomean: dropped {dropped} non-positive value(s) "
                   f"out of {len(values)}")
        if strict:
            raise ValueError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    if not kept:
        return 0.0
    return math.exp(sum(math.log(v) for v in kept) / len(kept))


class Table:
    """A printable, CSV-able results table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.3g}"
        return str(cell)

    def format(self) -> str:
        cells = [[self._fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(parts):
            return "  ".join(p.ljust(w) for p, w in zip(parts, widths))

        out = [self.title, "=" * len(self.title),
               line(self.headers), line(["-" * w for w in widths])]
        out.extend(line(row) for row in cells)
        return "\n".join(out)

    def to_csv(self) -> str:
        # Cells are written raw (``str(float)`` is shortest-repr in
        # Python 3), NOT through the lossy ``_fmt`` display formatting:
        # ``float(cell)`` round-trips bit-exactly.
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_json(self) -> str:
        """Machine-readable dump with full float precision.

        NaN cells are emitted as JSON ``NaN`` literals (the Python
        ``json`` dialect), which ``json.loads`` reads back unchanged.
        """
        return json.dumps(
            {"title": self.title, "headers": self.headers,
             "rows": self.rows},
            indent=1,
        )

    def column(self, header: str) -> List:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def __repr__(self) -> str:
        return f"Table({self.title!r}, {len(self.rows)} rows)"
