"""repro.guard — simulation watchdog, invariants, fault injection.

The robustness subsystem around the fast simulation core:

* :class:`Guard` (``watchdog.py``) — attached per launch; detects
  no-progress states and budget overruns, verifies quiescence and
  conservation invariants, and aborts with a structured
  :class:`~repro.errors.SimulationStallError` /
  :class:`~repro.errors.InvariantViolation` carrying a diagnostic
  bundle instead of spinning forever.
* :class:`GuardConfig` (``config.py``) — modes (``REPRO_GUARD`` =
  ``off`` / ``watch`` / ``on`` / ``strict``) and thresholds.
* :mod:`repro.guard.faults` — deterministic fault injection proving
  the above actually fire.

See ``docs/MODEL.md`` §"Guardrails" for the operator-facing story.
"""

from repro.errors import (FaultInjectionError, GuardError,
                          InvariantViolation, SimulationStallError)
from repro.guard.config import (GUARD_ENV, MAX_CYCLES_ENV, MODES,
                                GuardConfig, env_float, env_int, guard_mode)
from repro.guard.faults import (FAULTS_ENV, SERVE_KINDS, ServeFaultPlan,
                                ServeFaults, is_corrupt_result,
                                parse_serve_plans)
from repro.guard.watchdog import Guard

__all__ = [
    "FAULTS_ENV",
    "GUARD_ENV",
    "MAX_CYCLES_ENV",
    "MODES",
    "SERVE_KINDS",
    "Guard",
    "GuardConfig",
    "GuardError",
    "FaultInjectionError",
    "InvariantViolation",
    "ServeFaultPlan",
    "ServeFaults",
    "SimulationStallError",
    "env_float",
    "env_int",
    "guard_mode",
    "is_corrupt_result",
    "parse_serve_plans",
]
