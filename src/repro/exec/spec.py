"""Declarative run specifications: the unit of work of the exec service.

A :class:`RunSpec` describes one simulation data point — *which*
workload (family + generator parameters), *where* it runs (platform),
*how* the GPU is configured (a config **policy**, not a concrete
:class:`~repro.gpu.config.GPUConfig`, so that workload-size-dependent
cache scaling happens next to the workload, inside the worker), and any
extra runner keyword arguments.  Specs are plain JSON-serializable
data, which makes them:

* **dispatchable** — a spec can be shipped to a worker process and
  executed there without pickling live workload objects;
* **content-addressable** — :attr:`RunSpec.key` is the SHA-256 of the
  canonical JSON form plus a code-version fingerprint, so a completed
  run can be memoized on disk and found again by any later process.

Config policies (the ``config`` mapping):

==============  ==============================================================
``scaled``      derive the config with
                :func:`~repro.harness.runner.scaled_config_for` from the
                built workload's footprint; optional ``pressure`` float.
``default``     start from :data:`~repro.gpu.config.DEFAULT_CONFIG`.
==============  ==============================================================

Either policy accepts an ``overrides`` mapping applied last via
``GPUConfig.with_overrides``.  ``config=None`` means "whatever the
runner's own default is" (which is the scaled policy for every CUDA
workload runner).
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import __version__
from repro.errors import ConfigurationError
from repro.sim import scheduler_fingerprint

#: Bump when the meaning of a spec field changes: old cache entries
#: must not satisfy new specs.
SPEC_SCHEMA = 1

#: Workload families the execution service knows how to build and run.
KINDS = ("btree", "nbody", "rtnn", "wknd", "lumi", "rtree", "knn")


def code_fingerprint() -> str:
    """Version string folded into every spec key.

    A new repro release (or spec-schema bump) invalidates the cache
    wholesale — the engine is deterministic *per version*, not across
    arbitrary code changes.  The scheduler fingerprint (engine-source
    hash plus the selected core, fast vs legacy) is folded in as well:
    results produced by different scheduler models must never satisfy
    each other's specs, even within one release.
    """
    return f"{__version__}+schema{SPEC_SCHEMA}+sim{scheduler_fingerprint()}"


def _check_jsonable(name: str, value: Any) -> None:
    try:
        json.dumps(value, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"RunSpec.{name} must be JSON-serializable data: {exc}"
        ) from None


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One (workload, platform, config) simulation point, as pure data."""

    kind: str
    workload: Dict[str, Any]
    platform: str
    config: Optional[Dict[str, Any]] = None
    run_kwargs: Dict[str, Any] = field(default_factory=dict)
    version: str = field(default_factory=code_fingerprint)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; pick from {KINDS}"
            )
        _check_jsonable("workload", self.workload)
        _check_jsonable("config", self.config)
        _check_jsonable("run_kwargs", self.run_kwargs)

    # -- canonical form ------------------------------------------------------
    def canonical(self) -> str:
        """Deterministic JSON: sorted keys, no whitespace."""
        return json.dumps(
            {
                "kind": self.kind,
                "workload": self.workload,
                "platform": self.platform,
                "config": self.config,
                "run_kwargs": self.run_kwargs,
                "version": self.version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def key(self) -> str:
        """Content address: SHA-256 hex of the canonical form."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable tag for progress lines and manifests."""
        parts = [f"{k}={v}" for k, v in sorted(self.workload.items())
                 if k != "seed"]
        return f"{self.kind}[{','.join(parts)}]@{self.platform}"

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        return self.canonical()

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        data = json.loads(text)
        return cls(
            kind=data["kind"],
            workload=data["workload"],
            platform=data["platform"],
            config=data.get("config"),
            run_kwargs=data.get("run_kwargs") or {},
            version=data.get("version") or code_fingerprint(),
        )

    # -- identity ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        return f"RunSpec({self.label}, key={self.key[:12]})"


def make_spec(kind: str, workload: Dict[str, Any], platform: str,
              config: Optional[Dict[str, Any]] = None,
              run_kwargs: Optional[Dict[str, Any]] = None,
              version: Optional[str] = None) -> RunSpec:
    """Convenience constructor; drops run kwargs left at ``None``."""
    run_kwargs = {k: v for k, v in (run_kwargs or {}).items()
                  if v is not None}
    return RunSpec(kind=kind, workload=dict(workload), platform=platform,
                   config=dict(config) if config is not None else None,
                   run_kwargs=run_kwargs,
                   version=version or code_fingerprint())
