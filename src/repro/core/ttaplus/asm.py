"""Assembler for TTA+ intersection-test programs.

Listing 1 of the paper configures intersection tests from program files
(``ConfigI("RayBoxProg.asm")``).  This module implements that format: a
tiny assembly language where each line is one µop naming its OP unit,
optionally with operand annotations (which the behavioral model keeps
for documentation and the termination-condition PC check) and a repeat
count.

Syntax::

    ; Ray-Box intersection test            <- comments with ';' or '#'
    SUB    diff1, boxMin, origin           <- unit mnemonic + operands
    RCP x3 inv, dir                        <- xN repeats the µop N times
    MINMAX tx1, tx2, tmin
    TERM   found                           <- marks the termination PC

Mnemonics map to Table I units:

    ADD/SUB -> vec3_addsub    MUL -> mul        RCP -> rcp
    CROSS -> cross            DOT -> dot        CMP -> vec3_cmp
    MINMAX -> minmax          MAXMIN -> maxmin  AND/OR/XOR/NOT -> logical
    SQRT -> sqrt              XFORM -> rxform
"""

import re
from typing import List, Optional, Tuple

from repro.errors import ProgramError
from repro.core.ttaplus.programs import UopProgram
from repro.core.ttaplus.uop import Uop

MNEMONICS = {
    "ADD": "vec3_addsub",
    "SUB": "vec3_addsub",
    "MUL": "mul",
    "RCP": "rcp",
    "CROSS": "cross",
    "DOT": "dot",
    "CMP": "vec3_cmp",
    "MINMAX": "minmax",
    "MAXMIN": "maxmin",
    "AND": "logical",
    "OR": "logical",
    "XOR": "logical",
    "NOT": "logical",
    "SQRT": "sqrt",
    "XFORM": "rxform",
}

_REPEAT = re.compile(r"^x(\d+)$", re.IGNORECASE)


class AssembledProgram(UopProgram):
    """A µop program with source-level operand annotations."""

    def __init__(self, name: str, uops, operands: List[str],
                 terminate_pc: Optional[int]):
        super().__init__(name, uops)
        self.operands = operands
        self.terminate_pc = terminate_pc


def assemble(name: str, source: str) -> AssembledProgram:
    """Assemble ``source`` into a runnable µop program.

    Raises :class:`~repro.errors.ProgramError` with a line number on any
    syntax error.
    """
    uops: List[Uop] = []
    operands: List[str] = []
    terminate_pc: Optional[int] = None
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        mnemonic, repeat, operand_text = _parse_line(line, line_no)
        if mnemonic == "TERM":
            if terminate_pc is not None:
                raise ProgramError(
                    f"{name}:{line_no}: duplicate TERM directive"
                )
            if not uops:
                raise ProgramError(
                    f"{name}:{line_no}: TERM before any µop"
                )
            terminate_pc = len(uops) - 1
            continue
        unit = MNEMONICS.get(mnemonic)
        if unit is None:
            raise ProgramError(
                f"{name}:{line_no}: unknown mnemonic {mnemonic!r}; "
                f"expected one of {sorted(MNEMONICS)} or TERM"
            )
        for _ in range(repeat):
            uops.append(Uop(unit))
            operands.append(operand_text)
    if not uops:
        raise ProgramError(f"{name}: program has no µops")
    return AssembledProgram(name, uops, operands, terminate_pc)


def _parse_line(line: str, line_no: int) -> Tuple[str, int, str]:
    parts = line.split(None, 1)
    mnemonic = parts[0].upper()
    rest = parts[1].strip() if len(parts) > 1 else ""
    repeat = 1
    if rest:
        first, *others = rest.split(None, 1)
        match = _REPEAT.match(first)
        if match:
            repeat = int(match.group(1))
            if repeat < 1:
                raise ProgramError(f"line {line_no}: repeat must be >= 1")
            rest = others[0].strip() if others else ""
    return mnemonic, repeat, rest


def assemble_file(path: str, name: Optional[str] = None) -> AssembledProgram:
    """Assemble a ``.asm`` file (the Listing 1 ``ConfigI`` path)."""
    with open(path) as f:
        source = f.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return assemble(name, source)


#: The stock Ray-Box program, in the assembly form Listing 1 references.
RAY_BOX_ASM = """
; Ray-Box intersection test (RayBoxProg.asm of Listing 1)
SUB     diff1, boxMin, origin
SUB     diff2, boxMax, origin
RCP x3  inv, dir
MUL x6  tx, diff, inv
MINMAX x3  tnear, tx1, tx2
MAXMIN x3  tfar,  tx1, tx2
CMP     hit, tnear, tfar
OR      anyhit, hit
TERM    anyhit
"""
