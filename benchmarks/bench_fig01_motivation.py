"""Fig. 1 — SIMT efficiency and DRAM bandwidth utilization."""

from repro.harness import experiments


def test_fig01_motivation(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig01_motivation(scale), rounds=1, iterations=1)
    save_table("fig01_motivation", table)
    # Shape: the accelerated configuration must raise DRAM utilization for
    # every workload (Fig. 1's right-hand bars).
    for row in table.rows:
        assert row[5] > row[3], f"{row[0]}: TTA did not raise DRAM util"
    # Tree searches are divergent; N-Body's warp-voting walk is not.
    simt = dict(zip(table.column("workload"), table.column("simt_eff(gpu)")))
    assert simt["btree"] < 0.8 < simt["nbody3d"]
