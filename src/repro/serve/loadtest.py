"""Deterministic virtual-time loadtest: the measured serving core.

The loadtest replays an open-loop arrival schedule
(:mod:`repro.serve.loadgen`) against resident indexes on one platform
and reports latency percentiles — entirely in *virtual time*.  No real
sleeps, no real clocks: arrivals, batch deadlines, device occupancy,
and completions all live on one simulated wall-clock timeline, so a
given ``(profile, platform, policy)`` triple always produces the same
percentiles, byte for byte.

The event loop is a plain heap of ``(t, seq)``-ordered events:

* **arrival** — admission check, then offer to the
  :class:`~repro.serve.batcher.MicroBatcher`; a batch that closes on
  size dispatches immediately,
* **deadline** — generation-checked timeout closure of an open batch.

Dispatch shards a closed batch across ``n_shards`` simulated devices:
each shard runs as one kernel launch through the platform's
:class:`~repro.serve.backends.LaunchBackend` (real simulated cycles),
lands on the earliest-free device, and occupies it for
``clock.launch_seconds(cycles)``.  A query's latency is
``completion - arrival`` where completion is the max over its batch's
shard finish times — queueing delay, batching wait, and simulated
kernel time all included, which is exactly what an open-loop load test
is supposed to surface (MODEL.md §10).
"""

import copy
import heapq
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.serve.backends import LaunchBackend
from repro.serve.batcher import Batch, BatchPolicy, MicroBatcher, QueryRequest
from repro.serve.clock import DEFAULT_CLOCK, ServiceClock
from repro.serve.index import ResidentIndex
from repro.serve.loadgen import LoadProfile, generate_arrivals
from repro.serve.resilience import (EwmaEstimator, ResilienceConfig,
                                    default_config, slo_summary)

if TYPE_CHECKING:
    from repro.mutation import MutationConfig

#: Percentiles every report carries.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)

#: Time buckets in the ``--write-mix`` churn curve.
CHURN_CURVE_BUCKETS = 12


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over a *sorted* sample list."""
    if not samples:
        return 0.0
    if not 0.0 < pct <= 100.0:
        raise ConfigurationError(f"percentile out of range: {pct}")
    rank = max(1, -(-len(samples) * pct // 100.0))  # ceil
    return samples[int(rank) - 1]


@dataclass
class ClassReport:
    """Latency summary for one query class."""

    query_class: str
    served: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        ordered = sorted(self.latencies_ms)
        out: Dict[str, Any] = {"served": self.served}
        for pct in REPORT_PERCENTILES:
            out[f"p{pct:g}_ms"] = percentile(ordered, pct)
        if ordered:
            out["mean_ms"] = sum(ordered) / len(ordered)
            out["max_ms"] = ordered[-1]
        return out


@dataclass
class LoadtestReport:
    """One platform × profile loadtest result."""

    platform: str
    profile: LoadProfile
    n_shards: int
    policy: BatchPolicy
    classes: Dict[str, ClassReport] = field(default_factory=dict)
    offered: int = 0              # measured-window arrivals
    served: int = 0               # measured-window completions
    rejected: int = 0
    batches: int = 0
    degraded_batches: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    sim_cycles: float = 0.0       # total simulated kernel cycles
    t_end: float = 0.0            # virtual time of the last completion
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    # -- resilience accounting (measured-window queries only).  The SLO
    # invariant is offered == served + failed + shed: every measured
    # query lands in exactly one bucket.
    resilience_mode: str = "off"
    shed: int = 0                 # refused at admission / expired unbatched
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    failed: int = 0               # admitted but never completed
    deadline_misses: int = 0      # served, but past their deadline
    hedges: int = 0               # launches re-dispatched off dead shards
    retries: int = 0              # backend launch retries
    breaker_opens: int = 0        # circuit-breaker open transitions
    corrupt_results: int = 0      # integrity violations detected
    degraded_reasons: Dict[str, int] = field(default_factory=dict)
    # -- mutation accounting; None unless a write stream ran, in which
    # case to_dict() grows a "mutation" block (a read-only loadtest's
    # report stays byte-identical to the pre-mutation stack).
    mutation_summary: Optional[Dict[str, Any]] = None

    @property
    def offered_qps(self) -> float:
        return self.offered / self.profile.duration_s

    @property
    def achieved_qps(self) -> float:
        return self.served / self.profile.duration_s

    @property
    def mean_batch_size(self) -> float:
        return (sum(self.batch_sizes) / len(self.batch_sizes)
                if self.batch_sizes else 0.0)

    def all_latencies_ms(self) -> List[float]:
        out: List[float] = []
        for report in self.classes.values():
            out.extend(report.latencies_ms)
        out.sort()
        return out

    def slo(self) -> Dict[str, Any]:
        """The SLO block: goodput, shed fraction, error budget, p99 of
        admitted traffic (:func:`repro.serve.resilience.slo_summary`)."""
        ordered = self.all_latencies_ms()
        return slo_summary(self.offered, self.served, self.shed,
                           self.failed, self.deadline_misses,
                           self.profile.duration_s,
                           percentile(ordered, 99.0))

    def to_dict(self) -> Dict[str, Any]:
        ordered = self.all_latencies_ms()
        overall: Dict[str, Any] = {}
        for pct in REPORT_PERCENTILES:
            overall[f"p{pct:g}_ms"] = percentile(ordered, pct)
        out = {
            "platform": self.platform,
            "qps": self.profile.qps,
            "arrival": self.profile.arrival,
            "duration_s": self.profile.duration_s,
            "warmup_s": self.profile.warmup_s,
            "seed": self.profile.seed,
            "n_shards": self.n_shards,
            "policy": {"max_batch": self.policy.max_batch,
                       "max_wait_s": self.policy.max_wait_s},
            "offered": self.offered,
            "served": self.served,
            "rejected": self.rejected,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "batches": self.batches,
            "degraded_batches": self.degraded_batches,
            "mean_batch_size": self.mean_batch_size,
            "sim_cycles": self.sim_cycles,
            "latency_ms": overall,
            "classes": {cls: report.summary()
                        for cls, report in sorted(self.classes.items())},
            "resilience": {
                "mode": self.resilience_mode,
                "shed": self.shed,
                "shed_reasons": dict(sorted(self.shed_reasons.items())),
                "failed": self.failed,
                "deadline_misses": self.deadline_misses,
                "hedges": self.hedges,
                "retries": self.retries,
                "breaker_opens": self.breaker_opens,
                "corrupt_results": self.corrupt_results,
                "degraded_reasons": dict(
                    sorted(self.degraded_reasons.items())),
            },
            "slo": self.slo(),
        }
        if self.mutation_summary is not None:
            out["mutation"] = self.mutation_summary
        return out


class _Devices:
    """Earliest-free assignment over ``n`` simulated devices.

    ``blackouts`` maps a device slot to the virtual time it goes dark
    (the ``shard_blackout`` fault injector): a launch that would *start*
    on a dead device is routed around it, and a launch assigned before
    the death whose finish falls after it **hangs** — the device never
    answers, and it is the caller's job to hedge the launch onto a
    healthy device or account its queries as failed.
    """

    def __init__(self, n: int, blackouts: Optional[Dict[int, float]] = None):
        self.free_at = [0.0] * n
        self.dead_at: Dict[int, float] = dict(blackouts or {})

    def any_live(self, at: float) -> bool:
        return any(self.dead_at.get(slot) is None or at < self.dead_at[slot]
                   for slot in range(len(self.free_at)))

    def assign(self, ready: float,
               duration: float) -> Tuple[Optional[int], Optional[float]]:
        """Occupy the earliest-free live device.

        Returns ``(slot, finish)``; ``finish`` is None when the device
        dies mid-launch (the launch hangs), and ``slot`` is also None
        when every device is already dark.
        """
        order = sorted(range(len(self.free_at)),
                       key=lambda s: (self.free_at[s], s))
        for slot in order:
            start = max(ready, self.free_at[slot])
            dead = self.dead_at.get(slot)
            if dead is not None and start >= dead:
                continue
            finish = start + duration
            if dead is not None and finish > dead:
                # The device dies with this launch in flight: it never
                # completes, and the device never comes back.
                self.free_at[slot] = float("inf")
                return slot, None
            self.free_at[slot] = finish
            return slot, finish
        return None, None


def _shard(qids: Sequence[int], n_shards: int) -> List[List[int]]:
    n = min(n_shards, len(qids))
    base, extra = divmod(len(qids), n)
    shards, at = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        shards.append(list(qids[at:at + size]))
        at += size
    return shards


def run_loadtest(platform: str,
                 indexes: Dict[str, ResidentIndex],
                 profile: LoadProfile,
                 policy: Optional[BatchPolicy] = None,
                 clock: ServiceClock = DEFAULT_CLOCK,
                 n_shards: int = 1,
                 max_pending: Optional[int] = None,
                 backend: Optional[LaunchBackend] = None,
                 guard=None,
                 tracer=None,
                 resilience: Optional[ResilienceConfig] = None,
                 mutation: Optional["MutationConfig"] = None
                 ) -> LoadtestReport:
    """Replay one open-loop profile against ``indexes`` on ``platform``.

    ``indexes`` must cover every class in the profile's mix.
    ``max_pending`` is optional admission control: an arrival that finds
    that many queries still in flight is rejected (counted, not served).
    ``resilience`` selects the failure-semantics policy
    (:mod:`repro.serve.resilience`; default ``$REPRO_RESILIENCE``, i.e.
    ``off``, under which the loadtest is stat-for-stat identical to the
    pre-resilience stack).

    ``mutation`` (a :class:`repro.mutation.MutationConfig`) interleaves
    a seeded write stream with the read load: writes mutate the
    resident trees in place, maintenance (refit / epoch-swapped
    rebuild) is charged on the serving devices in virtual time, and the
    report grows a ``mutation`` block with per-class counters, quality
    metrics, and a latency-vs-churn curve.  ``None`` (the default)
    constructs no mutation machinery at all.  Note the write stream
    mutates the caller's ``indexes``.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    policy = policy or BatchPolicy()
    for cls in profile.classes():
        if cls not in indexes:
            raise ConfigurationError(
                f"profile mixes query class {cls!r} but no resident "
                f"index was built for it")
        if policy.max_batch > indexes[cls].capacity:
            raise ConfigurationError(
                f"max_batch {policy.max_batch} exceeds the {cls!r} "
                f"index's buffer capacity {indexes[cls].capacity}")
    if resilience is None:
        resilience = getattr(backend, "resilience", None) \
            if backend is not None else None
        if resilience is None:
            resilience = default_config()
    if backend is None:
        backend = LaunchBackend(platform, guard=guard,
                                resilience=resilience)
    elif backend.platform != platform:
        raise ConfigurationError(
            f"backend is for {backend.platform!r}, loadtest for "
            f"{platform!r}")

    capacities = {cls: idx.n_canonical for cls, idx in indexes.items()}
    arrivals = generate_arrivals(profile, capacities)

    report = LoadtestReport(platform, profile, n_shards, policy,
                            resilience_mode=resilience.mode)
    registry = MetricsRegistry()
    batcher = MicroBatcher(policy)
    # Duck-typed backend knobs: test stubs carry neither faults nor a
    # breaker, and the loadtest must run them unchanged.
    faults = getattr(backend, "faults", None)
    breaker = getattr(backend, "breaker", None)
    blackouts = faults.blackouts(n_shards) if faults else {}
    devices = _Devices(n_shards, blackouts)
    estimators: Dict[str, EwmaEstimator] = {}
    # Arrival index of every query still in flight, popped as virtual
    # time passes its completion (admission control's "pending" count).
    in_flight: List[float] = []
    degraded_before = backend.degraded
    reasons_before = dict(getattr(backend, "degraded_reasons", {}))
    retries_before = getattr(backend, "retries", 0)
    corrupt_before = getattr(backend, "corrupt_detected", 0)
    opens_before = breaker.opens if breaker is not None else 0

    mutables = None
    write_rng = None
    curve_buckets = None
    if mutation is not None:
        from repro.mutation import (MutableResidentIndex,
                                    generate_write_events)
        mutables = {
            cls: MutableResidentIndex(
                indexes[cls], policy=mutation.policy,
                refit_threshold=mutation.refit_threshold, clock=clock,
                registry=registry, tracer=tracer, platform=platform)
            for cls in profile.classes()}
        write_events = generate_write_events(profile, mutation.write,
                                             profile.classes())
        write_rng = random.Random(mutation.write.seed + 0x5EED)
        total_s = profile.warmup_s + profile.duration_s
        bucket_w = total_s / CHURN_CURVE_BUCKETS
        curve_buckets = [
            {"t0": i * bucket_w, "t1": (i + 1) * bucket_w, "writes": 0,
             "served": 0, "lat": [], "decay": []}
            for i in range(CHURN_CURVE_BUCKETS)]

    def bucket_at(t: float) -> Dict[str, Any]:
        i = min(CHURN_CURVE_BUCKETS - 1, int(t / bucket_w))
        return curve_buckets[i]

    events: List[tuple] = []
    seq = 0
    for arrival in arrivals:
        events.append((arrival.t, seq, "arrival", arrival))
        seq += 1
    if mutables is not None:
        for write_event in write_events:
            events.append((write_event.t, seq, "write", write_event))
            seq += 1
    heapq.heapify(events)

    def note(name: str, delta: float = 1.0) -> None:
        registry.add(name, delta)

    def emit(name: str, t: float, dur_s: float = 0.0, arg=None) -> None:
        if tracer is not None:
            tracer.emit("serve", platform, name, clock.cycles(t),
                        clock.cycles(dur_s) if dur_s else 0.0, arg)

    def emit_res(name: str, t: float, arg=None) -> None:
        if tracer is not None:
            tracer.emit("resilience", platform, name, clock.cycles(t),
                        0.0, arg)

    def shed(query_or_arrival, t: float, reason: str,
             query_class: str) -> None:
        """Refuse one query; measured sheds feed the SLO accounting."""
        measured = getattr(query_or_arrival, "measured", None)
        if measured is None:                  # a batched QueryRequest
            measured = query_or_arrival.payload.measured
        if measured:
            report.shed += 1
            report.shed_reasons[reason] = \
                report.shed_reasons.get(reason, 0) + 1
        note("serve.resilience.shed")
        note(f"serve.resilience.shed.{reason}")
        emit_res("shed", t, arg={"class": query_class, "reason": reason})

    def admission_reason(cls: str, t: float) -> Optional[str]:
        """Why this arrival must be shed right now (None = admit)."""
        if len(in_flight) + batcher.pending() >= resilience.queue_limit(cls):
            return "queue"
        if breaker is not None and not resilience.degrades \
                and breaker.opened_at is not None \
                and t - breaker.opened_at < breaker.cooldown_s:
            # Breaker is hard-open and nothing will degrade: every
            # admitted query is doomed, so refuse it up front.
            return "breaker"
        backlog = sum(max(0.0, free - t) for free in devices.free_at
                      if free != float("inf")) / n_shards
        budget = resilience.deadline_budget_s(cls)
        estimate = estimators.get(cls)
        if budget is not None and estimate is not None \
                and estimate.value is not None \
                and backlog + estimate.value > budget:
            # Infeasible: by the time the device backlog drains and the
            # batch runs, this query's (priority-scaled) budget is gone.
            # The estimate is pure service time, so this gate re-opens
            # by itself once shedding has drained the backlog.
            return "deadline"
        if backlog > resilience.backlog_limit_s(cls):
            return "backlog"
        return None

    def fail_queries(queries, t: float, reason: str) -> None:
        """Admitted queries that will never complete: counted, never
        silently dropped."""
        for query in queries:
            if query.payload.measured:
                report.failed += 1
            note("serve.resilience.failed")
            emit_res("failed", t, arg={"class": query.query_class,
                                       "reason": reason})

    def dispatch(batch: Batch) -> None:
        index = indexes[batch.query_class]
        if mutables is not None:
            # Install any finished rebuild and refresh the image so the
            # whole batch lowers against one consistent tree epoch.
            mutables[batch.query_class].ensure_ready(batch.t_close)
        queries = batch.queries
        if resilience.sheds:
            # Expire queries whose deadline already passed while they
            # waited in the open batch.
            live = [q for q in queries
                    if q.deadline is None or q.deadline > batch.t_close]
            for query in queries:
                if query.deadline is not None \
                        and query.deadline <= batch.t_close:
                    shed(query, batch.t_close, "expired",
                         batch.query_class)
            queries = live
            if not queries:
                return
        report.batches += 1
        report.batch_sizes.append(len(queries))
        note("serve.batches")
        note(f"serve.batch.{batch.closed_by}")
        registry.histogram("serve.batch_size").observe(len(queries))
        emit("batch", batch.t_close, arg={
            "class": batch.query_class, "size": len(queries),
            "closed_by": batch.closed_by})
        finishes: List[float] = []
        failed_shards: List[List[QueryRequest]] = []
        service_s = 0.0               # slowest shard's launch occupancy
        for shard_slots in _shard(range(len(queries)), n_shards):
            shard_queries = [queries[i] for i in shard_slots]
            shard_qids = [q.qid for q in shard_queries]
            launch = backend.launch(index, shard_qids, batch.t_close)
            if getattr(launch, "failed", False):
                failed_shards.append(shard_queries)
                note("serve.resilience.failed_launches")
                emit_res("launch_failed", batch.t_close, arg={
                    "class": batch.query_class,
                    "error": launch.error})
                continue
            report.sim_cycles += launch.cycles
            duration = clock.launch_seconds(
                launch.cycles, getattr(launch, "slow_factor", 1.0)) \
                + getattr(launch, "backoff_s", 0.0)
            service_s = max(service_s, duration)
            slot, finish = devices.assign(batch.t_close, duration)
            if finish is None:
                # The device died mid-launch (or every shard is dark).
                if slot is not None and resilience.hedges:
                    retry_at = devices.dead_at[slot] \
                        + resilience.hedge_timeout_s
                    hedge_slot, finish = devices.assign(retry_at, duration)
                    if finish is not None:
                        report.hedges += 1
                        note("serve.resilience.hedges")
                        emit_res("hedge", retry_at, arg={
                            "class": batch.query_class,
                            "from_shard": slot, "to_shard": hedge_slot})
                if finish is None:
                    failed_shards.append(shard_queries)
                    continue
            finishes.append(finish)
            note("serve.launches")
            note("serve.sim_cycles", launch.cycles)
            emit("launch", finish - duration, duration, arg={
                "class": batch.query_class, "queries": len(shard_qids),
                "cycles": launch.cycles, "engine": launch.engine})
        for shard_queries in failed_shards:
            fail_queries(shard_queries, batch.t_close, "launch")
        if not finishes:
            return
        t_done = max(finishes)
        report.t_end = max(report.t_end, t_done)
        emit("complete", t_done, arg={"class": batch.query_class,
                                      "size": len(queries)})
        n_failed = sum(len(s) for s in failed_shards)
        served_queries = queries if n_failed == 0 else [
            q for s in _shard(range(len(queries)), n_shards)
            for q in [queries[i] for i in s]
            if not any(q in fs for fs in failed_shards)]
        if resilience.sheds and served_queries:
            # Pure service time, never sojourn — the admission gate adds
            # the live backlog itself, and a sojourn estimate would wedge
            # above the deadline with no completions left to correct it.
            estimators.setdefault(
                batch.query_class, EwmaEstimator(resilience.ewma_alpha)
            ).observe(service_s)
        for query in served_queries:
            heapq.heappush(in_flight, t_done)
            arrival = query.payload  # the Arrival this request wraps
            if arrival.measured:
                report.served += 1
                note("serve.queries_served")
                latency_ms = (t_done - query.t_arrival) * 1e3
                if query.deadline is not None and t_done > query.deadline:
                    report.deadline_misses += 1
                    note("serve.resilience.deadline_misses")
                cls_report = report.classes.setdefault(
                    batch.query_class, ClassReport(batch.query_class))
                cls_report.served += 1
                cls_report.latencies_ms.append(latency_ms)
                registry.histogram("serve.latency_ms").observe(latency_ms)
                if curve_buckets is not None:
                    bucket = bucket_at(t_done)
                    bucket["served"] += 1
                    bucket["lat"].append(latency_ms)

    while events:
        t, _, kind, payload = heapq.heappop(events)
        while in_flight and in_flight[0] <= t:
            heapq.heappop(in_flight)
        if kind == "arrival":
            note("serve.queries_offered")
            if payload.measured:
                report.offered += 1
            if max_pending is not None and \
                    len(in_flight) + batcher.pending() >= max_pending:
                report.rejected += 1
                note("serve.queries_rejected")
                continue
            if resilience.sheds:
                reason = admission_reason(payload.query_class, t)
                if reason is not None:
                    shed(payload, t, reason, payload.query_class)
                    continue
            emit("enqueue", t, arg={"class": payload.query_class,
                                    "qid": payload.qid})
            deadline = None
            if resilience.sheds and resilience.deadline_s is not None:
                deadline = t + resilience.deadline_s
            request = QueryRequest(seq, payload.query_class, payload.qid,
                                   payload=payload, t_arrival=t,
                                   deadline=deadline)
            seq += 1
            had_open = batcher.generation(payload.query_class) is not None
            closed = batcher.offer(request)
            if closed is not None:
                dispatch(closed)
            elif not had_open:
                # This arrival opened a new batch: arm its timeout.
                timeout = batcher.deadline(payload.query_class)
                generation = batcher.generation(payload.query_class)
                heapq.heappush(events, (timeout, seq, "deadline",
                                        (payload.query_class, generation)))
                seq += 1
        elif kind == "write":
            # One write: mutate the tree, charge the cycle cost on the
            # serving devices — maintenance competes with launches for
            # device time, which is what bends the latency curve.
            mut = mutables[payload.query_class]
            cycles = mut.apply(payload, write_rng)
            duration = clock.seconds(cycles)
            devices.assign(t, duration)
            report.sim_cycles += cycles
            bucket = bucket_at(t)
            bucket["writes"] += 1
            if bucket["writes"] % 16 == 1:
                bucket["decay"].append(mut.decay_ratio())
            if tracer is not None:
                tracer.emit("mutation", platform, "write",
                            clock.cycles(t), cycles,
                            {"class": payload.query_class,
                             "op": payload.op})
        else:  # deadline (stale ones no-op via the generation token)
            cls, generation = payload
            closed = batcher.expire(cls, t, generation)
            if closed is not None:
                dispatch(closed)

    for batch in batcher.flush(report.t_end):   # defensive; heap drains all
        dispatch(batch)

    report.degraded_batches = backend.degraded - degraded_before
    report.degraded_reasons = {
        reason: delta for reason, count in
        sorted(getattr(backend, "degraded_reasons", {}).items())
        if (delta := count - reasons_before.get(reason, 0)) > 0}
    report.retries = getattr(backend, "retries", 0) - retries_before
    report.corrupt_results = \
        getattr(backend, "corrupt_detected", 0) - corrupt_before
    report.breaker_opens = \
        (breaker.opens if breaker is not None else 0) - opens_before
    registry.set("serve.degraded_batches", report.degraded_batches)
    registry.set("serve.offered_qps", report.offered_qps)
    registry.set("serve.achieved_qps", report.achieved_qps)
    if resilience.active or report.shed or report.failed \
            or report.retries or report.breaker_opens \
            or report.corrupt_results:
        registry.set("serve.resilience.retries", report.retries)
        registry.set("serve.resilience.breaker_opens",
                     report.breaker_opens)
        registry.set("serve.resilience.corrupt_results",
                     report.corrupt_results)
        registry.set("serve.resilience.goodput_qps",
                     report.slo()["goodput_qps"])
    if mutables is not None:
        from repro.mutation import QUALITY_KEYS

        curve = []
        for bucket in curve_buckets:
            ordered = sorted(bucket["lat"])
            decays = bucket["decay"]
            curve.append({
                "t0": round(bucket["t0"], 6),
                "t1": round(bucket["t1"], 6),
                "writes": bucket["writes"],
                "served": bucket["served"],
                "p50_ms": percentile(ordered, 50.0),
                "p99_ms": percentile(ordered, 99.0),
                "decay_ratio": (round(sum(decays) / len(decays), 6)
                                if decays else None),
            })
        per_class: Dict[str, Any] = {}
        for cls, mut in sorted(mutables.items()):
            quality = mut.quality()
            for key in QUALITY_KEYS:
                registry.set(f"mutation.{cls}.{key}", quality[key])
            registry.set(f"mutation.{cls}.decay_ratio", mut.decay_ratio())
            summary = mut.counters()
            summary["quality"] = {key: round(quality[key], 6)
                                  for key in QUALITY_KEYS}
            summary["maintenance"] = [
                {key: (round(value, 6) if isinstance(value, float)
                       else value) for key, value in event.items()}
                for event in mut.maintenance_events]
            per_class[cls] = summary
        report.mutation_summary = {
            "write_mix": dict(sorted(mutation.write.mix.items())),
            "write_seed": mutation.write.seed,
            "wps": mutation.write.wps,
            "writes_applied": sum(m.writes for m in mutables.values()),
            "refit_threshold": mutation.refit_threshold,
            "rebuild_policy": mutation.policy.describe(),
            "per_class": per_class,
            "churn_curve": curve,
        }
    report.metrics = registry.snapshot()
    return report


def run_qps_sweep(platforms: Sequence[str],
                  qps_values: Sequence[float],
                  indexes: Dict[str, ResidentIndex],
                  profile: LoadProfile,
                  policy: Optional[BatchPolicy] = None,
                  clock: ServiceClock = DEFAULT_CLOCK,
                  n_shards: int = 1,
                  guard=None,
                  progress=None,
                  resilience: Optional[ResilienceConfig] = None,
                  mutation: Optional["MutationConfig"] = None
                  ) -> Dict[str, Any]:
    """QPS-vs-latency curves: one loadtest per (platform, qps) point.

    Resident indexes are shared across every leg — the build cache's
    whole point — and each platform keeps one backend so its per-index
    scaled config is derived once.  Returns the ``repro loadtest`` JSON
    shape: ``{"curves": {platform: [point, ...]}, ...}``.

    With ``mutation`` set, every (platform, qps) leg runs against a
    deep copy of the pristine indexes: writes mutate state, and the
    curves are only comparable if each leg starts from the same tree.
    """
    if resilience is None:
        resilience = default_config()
    curves: Dict[str, List[Dict[str, Any]]] = {}
    for platform in platforms:
        backend = LaunchBackend(platform, guard=guard,
                                resilience=resilience)
        rows: List[Dict[str, Any]] = []
        for qps in qps_values:
            if progress is not None:
                progress(platform, qps)
            leg_indexes = indexes if mutation is None \
                else copy.deepcopy(indexes)
            report = run_loadtest(
                platform, leg_indexes, replace(profile, qps=qps),
                policy=policy, clock=clock, n_shards=n_shards,
                backend=backend, guard=guard, resilience=resilience,
                mutation=mutation)
            rows.append(report.to_dict())
        curves[platform] = rows
    out = {
        "profile": {
            "arrival": profile.arrival,
            "duration_s": profile.duration_s,
            "warmup_s": profile.warmup_s,
            "mix": dict(profile.mix),
            "seed": profile.seed,
        },
        "policy": {
            "max_batch": (policy or BatchPolicy()).max_batch,
            "max_wait_s": (policy or BatchPolicy()).max_wait_s,
        },
        "clock": {"core_mhz": clock.core_mhz,
                  "launch_overhead_s": clock.launch_overhead_s},
        "n_shards": n_shards,
        "resilience_mode": resilience.mode,
        "qps_values": list(qps_values),
        "curves": curves,
    }
    if mutation is not None:
        out["mutation"] = {
            "write_mix": dict(sorted(mutation.write.mix.items())),
            "write_seed": mutation.write.seed,
            "rebuild_policy": mutation.policy.describe(),
            "refit_threshold": mutation.refit_threshold,
        }
    return out
