"""Table IV: FreePDK45 synthesis areas, and the TTA Ray-Box delta (§V-C1).

All areas in µm² at 45nm.  These are the paper's synthesized values,
embedded as the reference the area benchmarks regenerate.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Baseline RTA operation units (one set).
BASELINE_AREAS_UM2: Dict[str, float] = {
    "ray_box": 270779.1,
    "ray_tri": 331299.0,
}

#: TTA+ components (one set of operation units + the interconnect).
TTAPLUS_AREAS_UM2: Dict[str, float] = {
    "interconnect_16x16_120B": 177902.2,
    "vec3_addsub": 17424.2,
    "mul": 9551.7,
    "minmax": 2176.6,
    "maxmin": 1895.0,
    "cross": 74734.1,
    "dot": 40271.1,
    "rcp_x3": 212991.3,
}
SQRT_AREA_UM2 = 284367.2

#: §V-C1: the modified Ray-Box unit (added comparators + bypassing).
TTA_RAY_BOX_AREA_UM2 = 275600.0   # 0.2756 mm^2
TTA_RAY_BOX_DELTA_UM2 = TTA_RAY_BOX_AREA_UM2 - BASELINE_AREAS_UM2["ray_box"]


def baseline_rta_area_um2() -> float:
    """One set of baseline intersection units (Table IV left: 602078.1)."""
    return sum(BASELINE_AREAS_UM2.values())


@dataclass
class AreaReport:
    """An area comparison in the shape of Table IV."""

    rows: List[Tuple[str, float]]
    total_um2: float
    vs_baseline_pct: float

    def row(self, name: str) -> float:
        for row_name, area in self.rows:
            if row_name == name:
                return area
        raise KeyError(name)


def ttaplus_area_report(with_sqrt: bool = True) -> AreaReport:
    """Table IV right: TTA+ component areas and the baseline comparison.

    Without SQRT, TTA+ is *smaller* than the baseline (-10.8%) because
    the modular units are shared rather than replicated; the SQRT unit
    needed for the new optimized workloads brings it to +36.4%.
    """
    rows = list(TTAPLUS_AREAS_UM2.items())
    if with_sqrt:
        rows.append(("sqrt", SQRT_AREA_UM2))
    total = sum(area for _name, area in rows)
    baseline = baseline_rta_area_um2()
    return AreaReport(rows, total, 100.0 * (total - baseline) / baseline)


def tta_area_report() -> AreaReport:
    """§V-C1: TTA modifies only the Ray-Box unit (+1.8% of that unit)."""
    rows = [
        ("ray_box_modified", TTA_RAY_BOX_AREA_UM2),
        ("ray_tri", BASELINE_AREAS_UM2["ray_tri"]),
    ]
    total = sum(area for _name, area in rows)
    baseline = baseline_rta_area_um2()
    return AreaReport(rows, total, 100.0 * (total - baseline) / baseline)


def tta_ray_box_overhead_pct() -> float:
    """The +1.8% Ray-Box area increase reported in §V-C1."""
    return 100.0 * TTA_RAY_BOX_DELTA_UM2 / BASELINE_AREAS_UM2["ray_box"]
