"""Extension study: R-Tree range queries and k-d tree kNN on TTA.

Neither structure appears in the paper's evaluation, but both are named
in its introduction as target domains; this bench demonstrates the
§II-C generality claim — the Query-Key and Point-to-Point operations
cover them without further hardware changes.
"""

from repro.harness.results import Table
from repro.harness.runner import run_knn, run_rtree, scaled_config_for
from repro.workloads import make_knn_workload, make_rtree_workload

SIZES = {"smoke": (1024, 256), "small": (8192, 1024), "large": (16384, 2048)}


def test_ext_spatial(benchmark, scale, save_table):
    n_items, n_queries = SIZES.get(scale, SIZES["small"])

    def build():
        table = Table(
            "Extension — spatial indexes on TTA/TTA+ (speedup vs GPU)",
            ["workload", "tta", "ttaplus", "simt_eff(gpu)", "dram(gpu)",
             "dram(tta)"],
        )
        rt = make_rtree_workload(n_rects=n_items, n_queries=n_queries,
                                 seed=7)
        cfg = scaled_config_for(rt.image.size_bytes)
        base = run_rtree(rt, "gpu", config=cfg)
        tta = run_rtree(rt, "tta", config=cfg)
        tp = run_rtree(rt, "ttaplus", config=cfg)
        table.add_row("rtree-range", tta.speedup_over(base),
                      tp.speedup_over(base), base.simt_efficiency,
                      base.dram_utilization, tta.dram_utilization)

        knn = make_knn_workload(n_points=n_items, n_queries=n_queries,
                                k=8, seed=8)
        cfg = scaled_config_for(knn.image.size_bytes)
        base = run_knn(knn, "gpu", config=cfg)
        tta = run_knn(knn, "tta", config=cfg)
        tp = run_knn(knn, "ttaplus", config=cfg)
        table.add_row("kdtree-knn", tta.speedup_over(base),
                      tp.speedup_over(base), base.simt_efficiency,
                      base.dram_utilization, tta.dram_utilization)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("ext_spatial", table)
    for row in table.rows:
        assert row[1] > 1.0, f"{row[0]}: TTA did not win"
        assert row[5] > row[4], f"{row[0]}: no DRAM utilization gain"
