"""TTA+: the modular, programmable redesign of the RTA compute units.

TTA+ decomposes the fixed-function intersection pipelines into
individual OP units (Table I) joined by a 16x16 crosspoint interconnect
(§III-C).  Intersection tests become µop *programs* that visit OP units
in sequence, paying an interconnect hop per hand-off — which is why a
Ray-Box test that took 13 cycles on fixed-function hardware takes
~10x longer here (Fig. 18), yet end-to-end ray tracing only slows ~8%
(Fig. 16) because node fetches dominate.
"""

from repro.core.ttaplus.opunits import OP_UNIT_LATENCIES, OpUnitBank
from repro.core.ttaplus.programs import PROGRAMS, UopProgram, program_named
from repro.core.ttaplus.ttaplus import TTAPlusBackend, make_ttaplus_factory
from repro.core.ttaplus.uop import Uop

__all__ = [
    "Uop",
    "UopProgram",
    "PROGRAMS",
    "program_named",
    "OP_UNIT_LATENCIES",
    "OpUnitBank",
    "TTAPlusBackend",
    "make_ttaplus_factory",
]
