"""Simulator configuration (Table II of the paper).

The clock-domain ratios of Table II (compute : interconnect : L2 :
memory = 1365 : 1365 : 1365 : 3500 MHz) are folded into per-core-cycle
bandwidths.  ``scaled`` shrinks the caches alongside a scaled-down
workload so that a 64k-key tree stresses the hierarchy the way a 4M-key
tree stresses the paper's 3MB L2 (see DESIGN.md §6).
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUConfig:
    """All knobs of the behavioral GPU + accelerator model."""

    # -- SIMT cores (Table II) ------------------------------------------------
    n_sms: int = 8
    warp_size: int = 32
    max_warps_per_sm: int = 32
    issue_width: int = 1            # instructions issued per SM per cycle

    # -- memory hierarchy (Table II) -------------------------------------------
    sector_size: int = 32
    line_size: int = 128
    l1_size: int = 64 * 1024        # per SM, fully associative LRU
    l1_assoc: int = -1              # -1 = fully associative
    l1_latency: int = 20
    l2_size: int = 3 * 1024 * 1024  # shared, 16-way LRU
    l2_assoc: int = 16
    l2_latency: int = 160
    l2_bytes_per_cycle: float = 512.0
    dram_latency: int = 220
    # 3500 MHz memory clock vs 1365 MHz core clock: a 2080 Ti-class
    # 616 GB/s GDDR6 system moves ~450 bytes per 1.365 GHz core cycle;
    # we model a slightly narrower 8-SM slice.
    dram_bytes_per_cycle: float = 352.0
    ldst_sectors_per_cycle: float = 1.0  # per-SM LDST sector throughput

    # -- accelerator front end (Table II bottom + §III) -------------------------
    tta_units_per_sm: int = 1
    warp_buffer_warps: int = 4       # rays resident per accelerator
    intersection_sets: int = 4       # parallel copies of the unit pair
    mem_scheduler_reqs_per_cycle: float = 1.0
    rta_issue_overhead: int = 10     # cycles to launch a traceRay per warp

    # -- fixed-function intersection latencies (§II-B) ---------------------------
    ray_box_latency: int = 13
    ray_tri_latency: int = 37
    # TTA's Query-Key reuse of the min/max network: a min-max-only
    # configuration takes 3 cycles (Fig. 14 discussion).
    query_key_latency: int = 13
    point_dist_latency: int = 13

    # -- TTA+ interconnect (§III-C) ---------------------------------------------
    icnt_hop_latency: int = 2        # crossbar traversal per µop hand-off
    icnt_width_bytes: int = 120

    def scaled(self, factor: float) -> "GPUConfig":
        """Shrink cache capacities by ``factor`` (for scaled-down workloads)."""
        if factor <= 0 or factor > 1:
            raise ValueError("scale factor must be in (0, 1]")

        def shrink(size: int, floor: int) -> int:
            return max(floor, int(size * factor))

        return replace(
            self,
            l1_size=shrink(self.l1_size, 4 * self.line_size),
            l2_size=shrink(self.l2_size, 16 * self.line_size * self.l2_assoc),
        )

    def with_overrides(self, **kwargs) -> "GPUConfig":
        return replace(self, **kwargs)


DEFAULT_CONFIG = GPUConfig()
