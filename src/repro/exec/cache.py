"""Content-addressed on-disk cache of completed runs.

Layout (one entry per :class:`~repro.exec.spec.RunSpec` key)::

    <root>/v1/<key[:2]>/<key>.pkl    pickled RunResult
    <root>/v1/<key[:2]>/<key>.json   spec + creation metadata (debuggable)

Alongside run results the cache stores **index builds** — whole
constructed workload objects (tree + memory image + query stream) under
``<root>/builds/``.  Build entries are keyed by :func:`build_key`: the
tree-construction parameters plus a *dataset fingerprint* (the
generator source that turns those parameters into keys/points/windows),
**not** a full RunSpec — platform, GPU config, and the simulator
fingerprint play no part in how a tree is built, so a resident-index
server (:mod:`repro.serve`) can reuse a build across platforms and
engine revisions.  The fingerprint folds the source of ``repro.trees``
and ``repro.workloads``: any change to dataset generation or tree
construction changes every key, so a stale-keyed entry can never be
written, let alone served.

The pickle is the payload; the JSON sidecar exists so ``repro cache
stats`` and humans can see *what* an entry is without unpickling it,
and it carries the payload's SHA-256 so reads are validated.  Writes
are atomic (tempfile + ``os.replace``) so a killed sweep never leaves a
truncated entry behind; a corrupt entry (checksum mismatch, truncated
pickle, unreadable sidecar payload) is *quarantined* — moved to
``<root>/corrupt/`` for post-mortem instead of silently deleted — and
reported as a miss, so the point is recomputed rather than poisoning
the sweep.

The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Because the engine is deterministic, a cache hit is byte-identical to
re-running the simulation (``tests/test_exec.py`` asserts this), so
resuming an interrupted sweep only executes the missing points.
"""

import contextlib
import hashlib
import json
import os
import pathlib
import pickle
import shutil
import sys
import time
from typing import Any, Dict, Optional, Tuple

from repro.exec.spec import RunSpec

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk format version: bump when the entry layout/serialization
#: changes.  Distinct from the spec schema, which governs *keys*.
FORMAT = "v1"

#: Modules whose source defines dataset generation and tree
#: construction; their hash is the "dataset fingerprint" component of
#: every build key.  ``geometry`` belongs here because builds bake SoA
#: views and bounds computed by its kernels into the pickled workload.
_BUILD_SOURCE_PACKAGES = ("trees", "workloads", "geometry")

_build_fingerprint_memo: Optional[str] = None


def build_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Hash of every source file that shapes a built index.

    Covers ``repro.trees`` (node layouts, bulk-load algorithms),
    ``repro.workloads`` (dataset generators, buffer placement), and
    ``repro.geometry`` (the scalar and batch kernels whose numerics the
    built structures embed).  A build entry written under one
    fingerprint is invisible under any other, so construction-code
    drift invalidates builds wholesale.

    ``root`` overrides the package root (memoization skipped), letting
    tests copy the tree, edit one file, and prove the key moves.
    """
    global _build_fingerprint_memo
    if root is None and _build_fingerprint_memo is not None:
        return _build_fingerprint_memo
    base = root if root is not None \
        else pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for package in _BUILD_SOURCE_PACKAGES:
        for path in sorted((base / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    fingerprint = digest.hexdigest()[:12]
    if root is None:
        _build_fingerprint_memo = fingerprint
    return fingerprint


def build_key(kind: str, params: Dict[str, Any]) -> str:
    """Content address of one index build.

    Keyed on the workload family, its construction parameters (which,
    with the seed, fully determine the dataset), and
    :func:`build_fingerprint` — and on nothing else: no platform, no
    GPU config, no scheduler fingerprint.  Those belong to *runs*, not
    builds, and folding them in would make resident-index reuse
    spuriously miss.
    """
    canonical = json.dumps(
        {"kind": kind, "params": params, "build": build_fingerprint()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ResultCache:
    """Filesystem-backed, content-addressed RunResult store."""

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        self.base = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.root = self.base / FORMAT

    # -- paths ----------------------------------------------------------------
    def _paths(self, key: str) -> Tuple[pathlib.Path, pathlib.Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def metrics_path(self, key: str) -> pathlib.Path:
        """Flat ``repro.obs`` metrics sidecar for entry ``key``.

        Written at :meth:`put` time when the result carries a non-empty
        metrics snapshot, so dashboards and humans can read a run's
        metric values without unpickling the RunResult.
        """
        shard = self.root / key[:2]
        return shard / f"{key}.metrics.json"

    # -- read -----------------------------------------------------------------
    def contains(self, spec: RunSpec) -> bool:
        return self._paths(spec.key)[0].exists()

    def get(self, spec: RunSpec) -> Optional[Any]:
        """Return the cached RunResult for ``spec``, or None on a miss.

        A corrupt or unreadable entry (interrupted write from an older,
        pre-atomic layout, disk fault, unpicklable class drift, payload
        not matching the sidecar's SHA-256) is quarantined into
        ``<root>/corrupt/`` and reported as a miss rather than
        poisoning the run.
        """
        pkl, meta = self._paths(spec.key)
        try:
            with open(pkl, "rb") as fh:
                payload = fh.read()
            expected = self._expected_sha(meta)
            if expected is not None and \
                    hashlib.sha256(payload).hexdigest() != expected:
                raise ValueError(f"cache entry {spec.key} fails its checksum")
            return pickle.loads(payload)
        except FileNotFoundError:
            return None
        except Exception:
            self.quarantine(spec.key)
            return None

    @staticmethod
    def _expected_sha(meta: pathlib.Path) -> Optional[str]:
        """The payload checksum recorded at put() time, if any.

        Entries written before checksums existed (or with a damaged
        sidecar) validate by unpickling alone.
        """
        try:
            with open(meta, "r") as fh:
                return json.load(fh).get("sha256")
        except Exception:
            return None

    def quarantine(self, key: str) -> None:
        """Move a damaged entry to ``<root>/corrupt/`` (delete as a
        last resort), so it reads as a miss but survives post-mortem."""
        pkl, meta = self._paths(key)
        corrupt_dir = self.base / "corrupt"
        try:
            corrupt_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            corrupt_dir = None
        for path in (pkl, meta, self.metrics_path(key)):
            moved = False
            if corrupt_dir is not None:
                try:
                    os.replace(path, corrupt_dir / path.name)
                    moved = True
                except OSError:
                    pass
            if not moved:
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- write ----------------------------------------------------------------
    def put(self, spec: RunSpec, result: Any,
            seconds: Optional[float] = None) -> None:
        pkl, meta = self._paths(spec.key)
        pkl.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=4)
        self._atomic_write(pkl, payload)
        sidecar = {
            "spec": spec.canonical(),
            "label": spec.label,
            "created": time.time(),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        if seconds is not None:
            sidecar["seconds"] = seconds
        self._atomic_write(meta, json.dumps(sidecar, indent=1).encode())
        self.put_metrics(spec, result)

    def put_metrics(self, spec: RunSpec, result: Any,
                    extra: Optional[Dict[str, Any]] = None) -> bool:
        """Write the flat metrics sidecar for ``spec``; True if written.

        Split out of :meth:`put` so *every* path that produces a result
        can record its metrics — including guard-degraded runs, whose
        legacy-engine result is deliberately never :meth:`put` (the
        entry key folds the fast-engine fingerprint) but whose metrics
        must not vanish from reports.  ``extra`` lands in the sidecar
        document (e.g. ``{"engine": "legacy", "degraded": True}``).
        """
        snapshot = getattr(getattr(result, "stats", None), "metrics", None)
        if not snapshot:
            return False
        doc = {"spec": spec.canonical(), "label": spec.label,
               "metrics": snapshot.as_dict()}
        if extra:
            doc.update(extra)
        path = self.metrics_path(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path,
                           json.dumps(doc, indent=1, default=str).encode())
        return True

    def result_sha(self, key: str) -> Optional[str]:
        """The SHA-256 of entry ``key``'s payload, from its sidecar.

        None on a miss (or a pre-checksum entry) — campaign manifests
        use this to fingerprint per-point results without unpickling.
        """
        return self._expected_sha(self._paths(key)[1])

    @staticmethod
    def _atomic_write(path: pathlib.Path, payload: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    # -- index builds -----------------------------------------------------------
    #: Pickling a tree follows its node links recursively; a large
    #: B-Tree's leaf chain runs thousands of nodes deep, far past the
    #: default limit of 1000 (the large-scale serve preset needs ~70k).
    _BUILD_RECURSION_LIMIT = 200_000

    @contextlib.contextmanager
    def _deep_pickle(self):
        previous = sys.getrecursionlimit()
        sys.setrecursionlimit(max(previous, self._BUILD_RECURSION_LIMIT))
        try:
            yield
        finally:
            sys.setrecursionlimit(previous)

    def _build_paths(self, key: str) -> Tuple[pathlib.Path, pathlib.Path]:
        shard = self.base / "builds" / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def get_build(self, key: str) -> Optional[Any]:
        """Return the cached workload build for ``key``, or None.

        Validation mirrors :meth:`get`: the payload must match the
        sidecar's SHA-256 and unpickle cleanly; anything else is
        quarantined and reported as a miss.
        """
        pkl, meta = self._build_paths(key)
        try:
            with open(pkl, "rb") as fh:
                payload = fh.read()
            expected = self._expected_sha(meta)
            if expected is not None and \
                    hashlib.sha256(payload).hexdigest() != expected:
                raise ValueError(f"build entry {key} fails its checksum")
            with self._deep_pickle():
                return pickle.loads(payload)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine_build(key)
            return None

    def put_build(self, key: str, workload: Any,
                  kind: Optional[str] = None,
                  params: Optional[Dict[str, Any]] = None,
                  seconds: Optional[float] = None) -> bool:
        """Store one built workload; returns False if it won't pickle.

        An unpicklable workload is a soft miss — the caller keeps its
        in-memory object and the next process rebuilds — never an
        error on the serving path.

        A *mutated* workload is refused outright: ``build_key`` folds
        construction parameters and the dataset fingerprint only, so an
        entry must always be the pristine epoch-0 build those inputs
        deterministically produce.  Writing a churned tree under that
        key would resurrect the mutations into every later process —
        the cache-staleness bug the mutation-epoch version exists to
        prevent (``tests/test_mutation.py`` proves the refusal).
        """
        if self._mutation_epoch(workload) != 0:
            return False
        pkl, meta = self._build_paths(key)
        try:
            with self._deep_pickle():
                payload = pickle.dumps(workload, protocol=4)
        except Exception:
            return False
        pkl.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(pkl, payload)
        sidecar = {
            "kind": kind,
            "params": params,
            "build_fingerprint": build_fingerprint(),
            "created": time.time(),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        if seconds is not None:
            sidecar["seconds"] = seconds
        self._atomic_write(meta, json.dumps(sidecar, indent=1).encode())
        return True

    @staticmethod
    def _mutation_epoch(workload: Any) -> int:
        """The workload's mutation epoch, looking through to its tree.

        Workloads built before the mutation layer (or plain test stubs)
        carry neither attribute and read as epoch 0 — cacheable, as
        before.
        """
        epoch = getattr(workload, "mutation_epoch", 0) or 0
        for attr in ("tree", "bvh"):
            tree = getattr(workload, attr, None)
            if tree is not None:
                epoch = max(epoch, getattr(tree, "mutation_epoch", 0) or 0)
        return epoch

    def _quarantine_build(self, key: str) -> None:
        corrupt_dir = self.base / "corrupt"
        try:
            corrupt_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            corrupt_dir = None
        for path in self._build_paths(key):
            moved = False
            if corrupt_dir is not None:
                try:
                    os.replace(path, corrupt_dir / path.name)
                    moved = True
                except OSError:
                    pass
            if not moved:
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- campaigns (repro.campaign coordination substrate) ----------------------
    #: Leases older than this are considered stale by :meth:`stats` and
    #: :meth:`prune_stale_leases` when the lease file itself does not
    #: carry a ``ttl_s``; matches the campaign scheduler's default.
    DEFAULT_LEASE_TTL_S = 300.0

    @property
    def campaigns_dir(self) -> pathlib.Path:
        return self.base / "campaigns"

    def _lease_files(self):
        root = self.campaigns_dir
        if not root.is_dir():
            return
        yield from root.glob("*/leases/*.json")

    def _lease_stale(self, path: pathlib.Path) -> bool:
        """A lease is stale once its writer-declared TTL has elapsed.

        Self-contained re-statement of the campaign scheduler's expiry
        rule (``repro.campaign`` imports ``repro.exec``, so the cache
        cannot call back into it) minus the local-pid fast path — a
        maintenance sweep only needs "old", not "stealable right now".
        """
        ttl = self.DEFAULT_LEASE_TTL_S
        acquired = None
        try:
            lease = json.loads(path.read_text())
            ttl = float(lease.get("ttl_s", ttl))
            acquired = float(lease.get("acquired", 0.0))
        except (OSError, ValueError):
            pass
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False
        newest = mtime if acquired is None else max(mtime, acquired)
        return time.time() - newest > ttl

    def lease_stats(self) -> Dict[str, int]:
        total = stale = 0
        for path in self._lease_files():
            total += 1
            if self._lease_stale(path):
                stale += 1
        return {"total": total, "stale": stale}

    def prune_stale_leases(self) -> int:
        """Unlink expired campaign leases; returns how many went.

        Safe against live sweeps by construction: a worker that was
        merely slow re-acquires through the same atomic claim/steal
        protocol, and double execution of a deterministic point is
        byte-identical.
        """
        removed = 0
        for path in list(self._lease_files()):
            if not self._lease_stale(path):
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune_quarantine(self) -> int:
        """Drop post-mortem artifacts: guard bundles and corrupt entries."""
        removed = 0
        for directory in (self.base / "quarantine", self.base / "corrupt"):
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- maintenance -----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.pkl"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        corrupt = 0
        corrupt_dir = self.base / "corrupt"
        if corrupt_dir.is_dir():
            corrupt = sum(1 for _ in corrupt_dir.glob("*.pkl"))
        builds = 0
        builds_dir = self.base / "builds"
        if builds_dir.is_dir():
            for path in builds_dir.rglob("*.pkl"):
                builds += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        campaigns = 0
        if self.campaigns_dir.is_dir():
            campaigns = sum(1 for p in self.campaigns_dir.iterdir()
                            if p.is_dir())
        quarantine = 0
        quarantine_dir = self.base / "quarantine"
        if quarantine_dir.is_dir():
            quarantine = sum(1 for _ in quarantine_dir.glob("*.json"))
        leases = self.lease_stats()
        return {"root": str(self.base), "format": FORMAT,
                "entries": entries, "builds": builds, "bytes": size,
                "corrupt": corrupt, "campaigns": campaigns,
                "leases": leases["total"], "stale_leases": leases["stale"],
                "quarantine": quarantine}

    def clear(self) -> int:
        """Delete every entry (runs and builds); returns how many."""
        stats = self.stats()
        removed = stats["entries"] + stats["builds"]
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        builds_dir = self.base / "builds"
        if builds_dir.is_dir():
            shutil.rmtree(builds_dir, ignore_errors=True)
        return removed
