"""A flat global address space shared by trees, query and result buffers.

``AddressSpace`` is a simple bump allocator with alignment plus a
registry of :class:`~repro.trees.layout.TreeImage` regions so the
functional side of a simulation can resolve a node address back to the
node object that lives there.  Regions never overlap (the bump cursor
only moves forward), so reverse lookup is a bisect over region bases
followed by arithmetic inside the matching image — no per-node tables.
"""

from bisect import bisect_right
from typing import List, Optional

from repro.errors import LayoutError
from repro.trees.layout import TreeImage


class AddressSpace:
    """Bump allocator + region registry for one simulation's memory."""

    def __init__(self, base: int = 0x1000):
        self._cursor = base
        self._images: List[TreeImage] = []
        self._bases: List[int] = []

    def alloc(self, size: int, align: int = 64) -> int:
        """Reserve ``size`` bytes aligned to ``align``; return the base."""
        if size <= 0:
            raise LayoutError("allocation size must be positive")
        if align <= 0 or (align & (align - 1)) != 0:
            raise LayoutError(f"alignment must be a power of two, got {align}")
        base = (self._cursor + align - 1) & ~(align - 1)
        self._cursor = base + size
        return base

    def place_tree(self, nodes, node_stride: int = 64) -> TreeImage:
        """Lay out a tree's nodes at the next free aligned region."""
        nodes = list(nodes)
        base = self.alloc(len(nodes) * node_stride, align=node_stride)
        image = TreeImage(nodes, base=base, node_stride=node_stride)
        self._images.append(image)
        self._bases.append(base)
        return image

    def node_at(self, address: int) -> Optional[object]:
        bases = getattr(self, "_bases", None)
        if bases is None:
            # Instances unpickled from caches written before the bisect
            # index existed rebuild it on first use.
            bases = self._bases = [image.base for image in self._images]
        i = bisect_right(bases, address) - 1
        if i >= 0:
            image = self._images[i]
            if image.contains(address):
                return image.node_at(address)
        return None

    @property
    def used_bytes(self) -> int:
        return self._cursor
