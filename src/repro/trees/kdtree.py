"""k-d trees and k-nearest-neighbor search.

k-d trees are the other spatial structure the paper's introduction
cites for physics simulation and nearest-neighbor search ([22], [30],
[35], [76], [80], [104]).  A kNN query is a guided depth-first descent
with distance-based pruning: the inner-node test compares the query's
coordinate against the splitting plane (a 1-wide Query-Key comparison on
TTA) plus a prune test against the current k-th best distance (a
Point-to-Point distance test) — both operations TTA already provides,
which is exactly the generality argument of §II-C.
"""

import heapq
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.vec import Vec3


class KDNode:
    """An inner node splits on ``axis`` at ``split``; leaves hold points."""

    __slots__ = ("axis", "split", "left", "right", "points", "point_ids",
                 "address")

    def __init__(self):
        self.axis = -1
        self.split = 0.0
        self.left: Optional["KDNode"] = None
        self.right: Optional["KDNode"] = None
        self.points: List[Vec3] = []
        self.point_ids: List[int] = []
        self.address = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def children(self) -> List["KDNode"]:
        return [] if self.is_leaf else [self.left, self.right]

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"KDNode(leaf, n={len(self.points)})"
        return f"KDNode(axis={self.axis}, split={self.split:.2f})"


class KDVisit(NamedTuple):
    node: KDNode
    kind: str      # "inner" (plane + prune tests) | "leaf" (distances)
    tests: int
    pruned: bool   # inner only: was the far subtree skipped


class KNNResult(NamedTuple):
    ids: Tuple[int, ...]        # nearest first
    distances: Tuple[float, ...]
    visits: Tuple[KDVisit, ...]


class KDTree:
    """A balanced k-d tree over 3D points (use z=0 for planar data)."""

    def __init__(self, points: Sequence[Vec3], max_leaf_size: int = 8,
                 dims: int = 3):
        if not points:
            raise ConfigurationError("k-d tree needs at least one point")
        if dims not in (2, 3):
            raise ConfigurationError("dims must be 2 or 3")
        if max_leaf_size < 1:
            raise ConfigurationError("max_leaf_size must be >= 1")
        self.points = list(points)
        self.dims = dims
        self.max_leaf_size = max_leaf_size
        order = list(range(len(self.points)))
        self.root = self._build(order, depth=0)

    def _build(self, order: List[int], depth: int) -> KDNode:
        node = KDNode()
        if len(order) <= self.max_leaf_size:
            node.points = [self.points[i] for i in order]
            node.point_ids = list(order)
            return node
        axis = depth % self.dims
        order.sort(key=lambda i: self.points[i].component(axis))
        mid = len(order) // 2
        node.axis = axis
        node.split = self.points[order[mid]].component(axis)
        node.left = self._build(order[:mid], depth + 1)
        node.right = self._build(order[mid:], depth + 1)
        return node

    def nodes(self) -> List[KDNode]:
        out, frontier = [], [self.root]
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            frontier.extend(node.children)
        return out

    def depth(self) -> int:
        def rec(node):
            if node.is_leaf:
                return 1
            return 1 + max(rec(node.left), rec(node.right))
        return rec(self.root)

    # -- kNN search -----------------------------------------------------------
    def knn(self, query: Vec3, k: int) -> KNNResult:
        """The k nearest points to ``query`` with a visit trace."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        #: max-heap of (-dist2, point_id); len <= k
        best: List[Tuple[float, int]] = []
        visits: List[KDVisit] = []

        def kth_dist2() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        def descend(node: KDNode) -> None:
            if node.is_leaf:
                for pid, point in zip(node.point_ids, node.points):
                    d2 = (point - query).length_squared()
                    if len(best) < k:
                        heapq.heappush(best, (-d2, pid))
                    elif d2 < kth_dist2():
                        heapq.heapreplace(best, (-d2, pid))
                visits.append(KDVisit(node, "leaf", len(node.points), False))
                return
            delta = query.component(node.axis) - node.split
            near, far = ((node.left, node.right) if delta <= 0
                         else (node.right, node.left))
            descend(near)
            # Prune: visit the far side only if the splitting plane is
            # closer than the current k-th neighbor.
            prune = delta * delta >= kth_dist2()
            visits.append(KDVisit(node, "inner", 2, prune))
            if not prune:
                descend(far)

        descend(self.root)
        ordered = sorted(((-negd2, pid) for negd2, pid in best))
        return KNNResult(tuple(pid for _d, pid in ordered),
                         tuple(d ** 0.5 for d, _p in ordered),
                         tuple(visits))

    def brute_force_knn(self, query: Vec3, k: int) -> Tuple[int, ...]:
        """Golden reference: full scan."""
        scored = sorted(
            ((p - query).length_squared(), i)
            for i, p in enumerate(self.points)
        )
        return tuple(i for _d, i in scored[:k])
