"""Tests for TTA's Query-Key comparison (Figs. 8-9 vs. Algorithm 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryKeyComparator
from repro.errors import ConfigurationError

UNIT = QueryKeyComparator()


class TestCompareGroup:
    def test_query_below_all(self):
        r = UNIT.compare_group(1.0, 2.0, 4.0, 6.0)
        assert (r.found, r.child) == (False, 0)

    def test_query_between(self):
        r = UNIT.compare_group(3.0, 2.0, 4.0, 6.0)
        assert (r.found, r.child) == (False, 1)
        r = UNIT.compare_group(5.0, 2.0, 4.0, 6.0)
        assert (r.found, r.child) == (False, 2)

    def test_query_above_all(self):
        r = UNIT.compare_group(7.0, 2.0, 4.0, 6.0)
        assert (r.found, r.child) == (False, None)

    def test_exact_matches(self):
        for i, q in enumerate((2.0, 4.0, 6.0)):
            r = UNIT.compare_group(q, 2.0, 4.0, 6.0)
            assert r.found
            assert r.child == i

    def test_unsorted_group_rejected(self):
        with pytest.raises(ConfigurationError):
            UNIT.compare_group(1.0, 4.0, 2.0, 6.0)


class TestCompareWide:
    KEYS = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]

    def test_routes_every_interval(self):
        for i, expected_key in enumerate(self.KEYS):
            r = UNIT.compare(expected_key - 1.0, self.KEYS)
            assert (r.found, r.child) == (False, i)

    def test_match_in_every_slot(self):
        for i, key in enumerate(self.KEYS):
            r = UNIT.compare(key, self.KEYS)
            assert r.found and r.child == i

    def test_beyond_all_keys(self):
        r = UNIT.compare(95.0, self.KEYS)
        assert (r.found, r.child) == (False, None)

    def test_partial_node_padding(self):
        keys = [10.0, 20.0, 30.0, 40.0]  # 4 of 9 slots used
        assert UNIT.compare(25.0, keys).child == 2
        assert UNIT.compare(45.0, keys) == (False, None)
        assert UNIT.compare(40.0, keys) == (True, 3)

    def test_single_key(self):
        assert UNIT.compare(5.0, [7.0]).child == 0
        assert UNIT.compare(7.0, [7.0]).found
        assert UNIT.compare(9.0, [7.0]).child is None

    def test_too_many_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            UNIT.compare(1.0, list(range(10)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            UNIT.compare(1.0, [])

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            UNIT.compare(1.0, [3.0, 1.0, 2.0])


@given(st.integers(min_value=-1000, max_value=1000),
       st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=9))
@settings(max_examples=300, deadline=None)
def test_property_minmax_network_equals_algorithm1(query, raw_keys):
    """The Fig. 9 min/max mapping must agree with Algorithm 1's loop."""
    keys = sorted(float(k) for k in raw_keys)
    query = float(query)
    hardware = UNIT.compare(query, keys)
    reference = UNIT.reference(query, keys)
    assert hardware.found == reference.found
    assert hardware.child == reference.child


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=9, unique=True))
@settings(max_examples=200, deadline=None)
def test_property_float_keys_agree(query, raw_keys):
    keys = sorted(raw_keys)
    hardware = UNIT.compare(query, keys)
    reference = UNIT.reference(query, keys)
    assert hardware == reference


def test_nine_wide_matches_paper_configuration():
    """Three min/max pairs x three keys each = 9 children per issue."""
    assert UNIT.WIDTH == 9
    assert UNIT.GROUP == 3
    assert UNIT.LANES == 3
