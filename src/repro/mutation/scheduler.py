"""Rebuild-vs-refit scheduling and the mutation cost model.

Maintenance is charged in *cycles on the simulated device* (the same
clock domain every launch uses), then mapped onto the service timeline
by :class:`repro.serve.clock.ServiceClock` — never wall time, so
loadtests stay deterministic.  The constants are per-node/per-item
costs in Table II core cycles, sized so that maintenance is visible
next to query launches without dwarfing them: a refit touches each node
once (bounds load + union + store), a rebuild pays a sort-like
``n log n`` over the live items.

``RebuildPolicy`` decides, at each maintenance point (every
``refit_threshold`` writes), whether to refit in place or schedule a
full rebuild:

``never``      refit only — quality decays without bound.
``always``     rebuild at every maintenance point.
``writes:N``   rebuild once N writes have accumulated since the last
               rebuild, refit otherwise (the classic RT-pipeline
               heuristic).
``quality:X``  rebuild when the tree's decay score exceeds X times its
               fresh-build baseline, refit otherwise.
"""

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Cycles charged per node touched by one write (descent + bound union).
WRITE_CYCLES_PER_NODE = 24.0

#: Cycles per node for a bottom-up refit sweep.
REFIT_CYCLES_PER_NODE = 12.0

#: Cycles per item per log2(n) level for a full bulk rebuild.
REBUILD_CYCLES_PER_ITEM = 64.0

REBUILD_MODES = ("never", "always", "writes", "quality")


@dataclass(frozen=True)
class RebuildPolicy:
    """When maintenance should escalate from refit to rebuild."""

    mode: str = "writes"
    write_threshold: int = 256
    quality_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.mode not in REBUILD_MODES:
            raise ConfigurationError(
                f"rebuild mode must be one of {REBUILD_MODES}, "
                f"got {self.mode!r}")
        if self.write_threshold < 1:
            raise ConfigurationError("rebuild write threshold must be >= 1")
        if self.quality_threshold <= 0:
            raise ConfigurationError("quality threshold must be positive")

    def wants_rebuild(self, writes_since_rebuild: int,
                      decay_ratio: float) -> bool:
        """The scheduling decision at one maintenance point."""
        if self.mode == "never":
            return False
        if self.mode == "always":
            return True
        if self.mode == "writes":
            return writes_since_rebuild >= self.write_threshold
        return decay_ratio >= self.quality_threshold

    def describe(self) -> str:
        if self.mode == "writes":
            return f"writes:{self.write_threshold}"
        if self.mode == "quality":
            return f"quality:{self.quality_threshold:g}"
        return self.mode


def parse_rebuild_policy(text: str) -> RebuildPolicy:
    """Parse ``never`` | ``always`` | ``writes:N`` | ``quality:X``."""
    mode, sep, arg = text.partition(":")
    if mode in ("never", "always"):
        if sep:
            raise ConfigurationError(
                f"rebuild mode {mode!r} takes no argument")
        return RebuildPolicy(mode=mode)
    if mode == "writes":
        try:
            n = int(arg) if sep else RebuildPolicy.write_threshold
        except ValueError:
            raise ConfigurationError(f"bad write threshold {arg!r}")
        return RebuildPolicy(mode="writes", write_threshold=n)
    if mode == "quality":
        try:
            x = float(arg) if sep else RebuildPolicy.quality_threshold
        except ValueError:
            raise ConfigurationError(f"bad quality threshold {arg!r}")
        return RebuildPolicy(mode="quality", quality_threshold=x)
    raise ConfigurationError(
        f"rebuild mode must be one of {REBUILD_MODES}, got {mode!r}")


def write_cycles(nodes_touched: int) -> float:
    return nodes_touched * WRITE_CYCLES_PER_NODE


def refit_cycles(nodes_touched: int) -> float:
    return nodes_touched * REFIT_CYCLES_PER_NODE


def rebuild_cycles(n_items: int) -> float:
    n = max(1, n_items)
    return n * max(1.0, math.log2(n)) * REBUILD_CYCLES_PER_ITEM
