"""Paper-reported values, used for side-by-side comparison in benches.

Values marked "(read)" are approximate readings of the paper's figures
(the paper publishes figures, not tables, for most results); headline
numbers come from the abstract and §V text.
"""

# -- headline claims (§ abstract, §V) ---------------------------------------
HEADLINES = {
    "btree_speedup_max": 5.4,          # "up to 5.4x speedup for B-Tree search"
    "btree_family_speedup_geomean": 2.4,
    "nbody_speedup_range": (1.1, 1.7),
    "nbody_fused_speedup": 1.9,        # merged traversal+post kernels, TTA+
    "rtnn_tta_speedup_max": 1.4,       # shader -> TTA point-to-point
    "rtnn_ttaplus_opt_speedup_max": 1.4,
    "lumibench_ttaplus_slowdown": 0.92,  # 8% mean slowdown
    "wknd_opt_improvement": 1.22,      # *WKND_PT over naive TTA+ port
    "instruction_reduction": 0.91,     # dynamic instructions eliminated
    "tta_instruction_share": 0.02,     # TTA insns of total dynamic insns
    "energy_reduction_range": (0.15, 0.62),
    "ray_tracing_individual_speedup": 1.2,
}

# -- Fig. 1 (read): SIMT efficiency / DRAM bandwidth utilization -----------------
FIG1_SIMT_EFFICIENCY = {
    "btree": 0.35, "bstar": 0.35, "bplus": 0.55,
    "nbody2d": 0.85, "nbody3d": 0.85,
}
FIG1_DRAM_UTIL_GPU = {
    "btree": 0.20, "bstar": 0.20, "bplus": 0.25,
    "nbody2d": 0.05, "nbody3d": 0.07,
}
FIG1_DRAM_UTIL_TTA = {
    "btree": 0.45, "bstar": 0.45, "bplus": 0.50,
    "nbody2d": 0.12, "nbody3d": 0.15,
}

# -- Fig. 12 (read): per-application speedups over the baseline ---------------------
FIG12_SPEEDUP_TTA = {
    "btree": (1.5, 5.4), "bstar": (1.5, 5.0), "bplus": (1.2, 3.0),
    "nbody2d": (1.3, 1.7), "nbody3d": (1.1, 1.4),
}
FIG12_RT_SPEEDUP_OVER_RTA = {
    "rtnn_tta": (1.1, 1.4),
    "rtnn_ttaplus_naive": (0.7, 1.0),   # slowdown
    "rtnn_ttaplus_opt": (1.0, 1.4),
}

# -- Fig. 14 (text): sensitivity --------------------------------------------------
FIG14 = {
    "saturation_warps": 8,
    "btree_speedup_at_10x_latency": 2.25,
    "bstar_speedup_at_10x_latency": 2.45,
}

# -- Fig. 18 (text): TTA+ latency -------------------------------------------------
FIG18_RAYBOX_LATENCY_FACTOR = 10.0   # "increasing by nearly 10x"

# -- Fig. 19 (text) -----------------------------------------------------------------
FIG19_BTREE_ENERGY_SAVINGS = (0.15, 0.62)
FIG19_RT_OPT_ENERGY_SAVINGS = (0.19, 0.29)

# -- §V-C1 / Table IV ------------------------------------------------------------
TTA_RAY_BOX_AREA_INCREASE_PCT = 1.8
TTA_RAY_BOX_POWER_INCREASE_PCT = 0.7
TTAPLUS_AREA_NO_SQRT_PCT = -10.8
TTAPLUS_AREA_WITH_SQRT_PCT = 36.4
