"""Vectorized batch geometry kernels over struct-of-arrays float64 data.

The scalar tests in :mod:`repro.geometry.intersect` /
:mod:`~repro.geometry.sphere` / :mod:`~repro.geometry.triangle` model
the hardware datapaths one ray at a time; the functions here evaluate
the *same* datapaths over whole warps/wavefronts of queries with numpy,
the way RTNN-style systems batch all queries' primitive tests into wide
sweeps.  Inputs are struct-of-arrays: coordinates as ``(..., 3)``
float64 arrays, scalars broadcast.

Every kernel is **bit-identical** to its scalar reference, including
under NaN/inf operands and inverted (tmin > tmax) intervals.  Two rules
make that hold:

* arithmetic uses the exact operation order of the scalar code (numpy
  float64 ops are IEEE-754 like Python floats, so same order ⇒ same
  bits);
* Python's ``min(a, b)``/``max(a, b)`` keep the *first* argument unless
  the second compares strictly smaller/greater — which is also how a
  comparator-mux network behaves, and differs from ``np.minimum`` /
  ``np.maximum`` (those propagate NaN).  The ``_pymin``/``_pymax``
  helpers reproduce the compare-and-select fold with ``np.where``, and
  rejection tests use the negated comparison forms (``~(t < tmin)``
  instead of ``t >= tmin``) so NaN operands fall through each branch
  exactly as they do in the scalar control flow.
"""

import numpy as np

__all__ = [
    "aabbs_soa",
    "contains_points_batch",
    "point_distance_below_batch",
    "point_distance_squared_batch",
    "points_soa",
    "ray_aabb_slab_batch",
    "ray_sphere_batch",
    "ray_sphere_roots_batch",
    "ray_triangle_batch",
    "ray_triangle_candidates_batch",
    "rays_soa",
    "spheres_soa",
    "triangles_soa",
]

_TRI_EPSILON = 1e-9  # keep in sync with repro.geometry.triangle._EPSILON


def _pymin(a, b):
    """Elementwise Python-``min`` semantics: b if b < a else a."""
    return np.where(b < a, b, a)


def _pymax(a, b):
    """Elementwise Python-``max`` semantics: b if b > a else a."""
    return np.where(b > a, b, a)


# -- struct-of-arrays packers --------------------------------------------------
def points_soa(points) -> np.ndarray:
    """Pack a sequence of :class:`~repro.geometry.vec.Vec3` into (N, 3)."""
    return np.array([(p.x, p.y, p.z) for p in points], dtype=np.float64)


def aabbs_soa(boxes):
    """Pack AABBs into ``(lo, hi)`` arrays of shape (N, 3)."""
    lo = np.array([(b.lo.x, b.lo.y, b.lo.z) for b in boxes], dtype=np.float64)
    hi = np.array([(b.hi.x, b.hi.y, b.hi.z) for b in boxes], dtype=np.float64)
    return lo, hi


def spheres_soa(spheres):
    """Pack spheres into ``(centers (N, 3), radii (N,))`` arrays."""
    centers = points_soa([s.center for s in spheres])
    radii = np.array([s.radius for s in spheres], dtype=np.float64)
    return centers, radii


def triangles_soa(triangles):
    """Pack triangles into ``(v0, v1, v2)`` arrays of shape (N, 3)."""
    return (points_soa([t.v0 for t in triangles]),
            points_soa([t.v1 for t in triangles]),
            points_soa([t.v2 for t in triangles]))


def rays_soa(rays):
    """Pack rays into ``(origin, inv_direction, direction, tmin, tmax)``."""
    origin = points_soa([r.origin for r in rays])
    inv = points_soa([r.inv_direction for r in rays])
    direction = points_soa([r.direction for r in rays])
    tmin = np.array([r.tmin for r in rays], dtype=np.float64)
    tmax = np.array([r.tmax for r in rays], dtype=np.float64)
    return origin, inv, direction, tmin, tmax


# -- Ray-Box (slab) ------------------------------------------------------------
def ray_aabb_slab_batch(origin, inv_direction, tmin, tmax, lo, hi):
    """Batched slab test; mirrors :func:`repro.geometry.ray_aabb_intersect`.

    ``origin``/``inv_direction`` and ``lo``/``hi`` are ``(..., 3)``
    arrays (broadcast against each other); ``tmin``/``tmax`` scalars or
    ``(...)`` arrays.  Returns ``(hit, t_entry, t_exit)`` where
    ``t_entry``/``t_exit`` equal the scalar results bit-for-bit on
    every lane (hit or miss).
    """
    with np.errstate(invalid="ignore"):  # 0 * inf lanes; scalar math is silent
        t1 = (lo - origin) * inv_direction
        t2 = (hi - origin) * inv_direction
    near = _pymin(t1, t2)
    far = _pymax(t1, t2)
    t_entry = _pymax(
        _pymax(_pymax(near[..., 0], near[..., 1]), near[..., 2]), tmin)
    t_exit = _pymin(
        _pymin(_pymin(far[..., 0], far[..., 1]), far[..., 2]), tmax)
    return t_entry <= t_exit, t_entry, t_exit


# -- Point-to-Point (Algorithm 2) ----------------------------------------------
def point_distance_squared_batch(a, b):
    """Batched squared distance with the scalar dot-fold order."""
    d = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64)
    dx, dy, dz = d[..., 0], d[..., 1], d[..., 2]
    return dx * dx + dy * dy + dz * dz


def point_distance_below_batch(a, b, threshold):
    """Batched Algorithm 2: ``|b - a| < threshold`` without sqrt."""
    dis2 = point_distance_squared_batch(a, b)
    threshold = np.asarray(threshold, dtype=np.float64)
    return dis2 < threshold * threshold


def contains_points_batch(lo, hi, p):
    """Batched inclusive point-in-AABB test (``AABB.contains_point``)."""
    p = np.asarray(p, dtype=np.float64)
    return ((lo[..., 0] <= p[..., 0]) & (p[..., 0] <= hi[..., 0])
            & (lo[..., 1] <= p[..., 1]) & (p[..., 1] <= hi[..., 1])
            & (lo[..., 2] <= p[..., 2]) & (p[..., 2] <= hi[..., 2]))


# -- Ray-Sphere ----------------------------------------------------------------
def _dot3(a, b):
    return (a[..., 0] * b[..., 0] + a[..., 1] * b[..., 1]
            + a[..., 2] * b[..., 2])


def ray_sphere_roots_batch(origin, direction, centers, radii):
    """Quadratic setup of the Ray-Sphere test, interval checks excluded.

    Returns ``(ok, near, far)``: ``ok`` is the discriminant test
    (``disc >= 0``); ``near``/``far`` are the two roots, valid only on
    ``ok`` lanes, each bit-identical to the scalar computation.  The
    caller applies the [tmin, tmax] selection — sequentially when the
    interval shrinks across a leaf, or via :func:`ray_sphere_batch`.
    """
    oc = origin - centers
    a = _dot3(direction, direction)
    half_b = _dot3(oc, direction)
    c = _dot3(oc, oc) - radii * radii
    disc = half_b * half_b - a * c
    ok = ~(disc < 0)
    sqrt_d = np.sqrt(np.where(ok, disc, 0.0))
    inv_a = 1.0 / a
    near = (-half_b - sqrt_d) * inv_a
    far = (-half_b + sqrt_d) * inv_a
    return ok, near, far


def ray_sphere_batch(origin, direction, tmin, tmax, centers, radii):
    """Full batched Ray-Sphere test for a fixed [tmin, tmax] interval.

    Mirrors :func:`repro.geometry.ray_sphere_intersect` exactly:
    returns ``(hit, t)`` with ``t`` the near root when it is in range,
    else the far root when that is, with the scalar's negated-comparison
    rejection so NaN roots behave identically.
    """
    ok, near, far = ray_sphere_roots_batch(origin, direction, centers, radii)
    near_in = ~(near < tmin) & ~(near > tmax)
    far_in = ~(far < tmin) & ~(far > tmax)
    hit = ok & (near_in | far_in)
    t = np.where(near_in, near, far)
    return hit, t


# -- Ray-Triangle (Möller-Trumbore) --------------------------------------------
def _cross3(a, b):
    out = np.empty(np.broadcast(a, b).shape, dtype=np.float64)
    out[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    out[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    out[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return out


def ray_triangle_candidates_batch(origin, direction, v0, v1, v2):
    """Möller-Trumbore with every rejection except the t-interval test.

    Returns ``(ok, t, u, v)``: ``ok`` lanes passed the parallel-plane
    and barycentric tests; ``t``/``u``/``v`` are bit-identical to the
    scalar computation on those lanes.  The t-interval check is left to
    the caller (it is the only stage that depends on a shrinking tmax).
    """
    edge1 = v1 - v0
    edge2 = v2 - v0
    pvec = _cross3(direction, edge2)
    det = _dot3(edge1, pvec)
    not_parallel = ~(np.abs(det) < _TRI_EPSILON)
    inv_det = 1.0 / np.where(not_parallel, det, 1.0)

    tvec = origin - v0
    u = _dot3(tvec, pvec) * inv_det
    u_ok = ~(u < 0.0) & ~(u > 1.0)

    qvec = _cross3(tvec, edge1)
    v = _dot3(direction, qvec) * inv_det
    v_ok = ~(v < 0.0) & ~(u + v > 1.0)

    t = _dot3(edge2, qvec) * inv_det
    return not_parallel & u_ok & v_ok, t, u, v


def ray_triangle_batch(origin, direction, tmin, tmax, v0, v1, v2):
    """Full batched Möller-Trumbore test for a fixed [tmin, tmax].

    Returns ``(hit, t, u, v)`` matching
    :func:`repro.geometry.ray_triangle_intersect` decision-for-decision.
    """
    ok, t, u, v = ray_triangle_candidates_batch(origin, direction, v0, v1, v2)
    hit = ok & ~(t < tmin) & ~(t > tmax)
    return hit, t, u, v
