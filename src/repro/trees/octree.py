"""Quadtree/octree with mass aggregates for Barnes-Hut N-Body.

Inner nodes carry total mass and center of mass.  During a force walk
the opening decision at an inner node is exactly the paper's
Point-to-Point distance test (Algorithm 2): the cell is *opened* when
the query body is closer to the cell's center of mass than
``cell_size / theta`` — i.e. when ``point_distance_below(body, com,
size/theta)`` holds — and otherwise approximated as a single particle.
Leaf interactions perform the force computation, which on TTA+ maps to
the 5-µop program in Table III (3 MUL + SQRT + R-XFORM).
"""

import math
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.intersect import point_distance_below
from repro.geometry.vec import Vec3

_MAX_DEPTH = 48  # beyond this, coincident bodies share a leaf


class Body(NamedTuple):
    """A point mass; ``vel`` is carried for integration steps."""

    position: Vec3
    mass: float
    vel: Vec3
    body_id: int


def make_body(position: Vec3, mass: float, body_id: int,
              vel: Vec3 = None) -> Body:
    return Body(position, float(mass), vel if vel is not None else Vec3(),
                body_id)


class BHNode:
    """One Barnes-Hut cell (2**dims children when subdivided).

    Leaves hold a small list of bodies (normally one; more only when
    bodies coincide beyond the maximum subdivision depth).
    """

    __slots__ = ("center", "half", "mass", "com", "children", "bodies",
                 "count", "address")

    def __init__(self, center: Vec3, half: float):
        self.center = center
        self.half = half
        self.mass = 0.0
        self.com = Vec3()
        self.children: Optional[List[Optional["BHNode"]]] = None
        self.bodies: List[Body] = []
        self.count = 0
        self.address = -1

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def size(self) -> float:
        return 2.0 * self.half

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "inner"
        return f"BHNode({kind}, n={self.count})"


class WalkEvent(NamedTuple):
    node: BHNode
    kind: str      # "inner" (distance test) | "leaf" (force computation)
    opened: bool   # inner only: did the distance test force descent


class ForceResult(NamedTuple):
    acceleration: Vec3
    visits: Tuple[WalkEvent, ...]


class BarnesHutTree:
    """Barnes-Hut tree over bodies in ``dims`` (2 or 3) dimensions."""

    def __init__(self, bodies: Sequence[Body], dims: int = 3,
                 theta: float = 0.5, softening: float = 1e-2,
                 gravity: float = 1.0):
        if dims not in (2, 3):
            raise ConfigurationError("Barnes-Hut supports 2D and 3D only")
        if not bodies:
            raise ConfigurationError("need at least one body")
        if theta <= 0:
            raise ConfigurationError("theta must be positive")
        self.dims = dims
        self.theta = theta
        self.softening = softening
        self.gravity = gravity
        self.bodies = list(bodies)
        self.root = self._build()
        # The tree is immutable once built, so force walks are pure
        # functions of the body; runners replay the same walk many times
        # (baseline kernel threads, job lowering, warp traces).
        self._force_cache: dict = {}

    # -- construction ---------------------------------------------------------
    def _build(self) -> BHNode:
        n = len(self.bodies)
        cx = sum(b.position.x for b in self.bodies) / n
        cy = sum(b.position.y for b in self.bodies) / n
        cz = (sum(b.position.z for b in self.bodies) / n
              if self.dims == 3 else 0.0)
        center = Vec3(cx, cy, cz)
        half = 1e-9
        for b in self.bodies:
            half = max(half,
                       abs(b.position.x - center.x),
                       abs(b.position.y - center.y),
                       abs(b.position.z - center.z) if self.dims == 3 else 0.0)
        root = BHNode(center, half * 1.001)
        for body in self.bodies:
            self._insert(root, body, depth=0)
        self._aggregate(root)
        return root

    def _child_index(self, node: BHNode, p: Vec3) -> int:
        idx = 0
        if p.x >= node.center.x:
            idx |= 1
        if p.y >= node.center.y:
            idx |= 2
        if self.dims == 3 and p.z >= node.center.z:
            idx |= 4
        return idx

    def _child_center(self, node: BHNode, idx: int) -> Vec3:
        q = node.half * 0.5
        return Vec3(
            node.center.x + (q if idx & 1 else -q),
            node.center.y + (q if idx & 2 else -q),
            node.center.z + ((q if idx & 4 else -q) if self.dims == 3 else 0.0),
        )

    def _insert(self, node: BHNode, body: Body, depth: int) -> None:
        node.count += 1
        if node.is_leaf:
            if not node.bodies or depth >= _MAX_DEPTH:
                node.bodies.append(body)
                return
            # Split: re-home the residents, then place the new body.
            residents, node.bodies = node.bodies, []
            node.children = [None] * (2 ** self.dims)
            for resident in residents:
                self._insert_into_child(node, resident, depth)
            self._insert_into_child(node, body, depth)
            return
        self._insert_into_child(node, body, depth)

    def _insert_into_child(self, node: BHNode, body: Body, depth: int) -> None:
        idx = self._child_index(node, body.position)
        if node.children[idx] is None:
            node.children[idx] = BHNode(self._child_center(node, idx),
                                        node.half * 0.5)
        self._insert(node.children[idx], body, depth + 1)

    def _aggregate(self, node: BHNode) -> None:
        if node.is_leaf:
            node.mass = sum(b.mass for b in node.bodies)
            if node.mass > 0:
                weighted = Vec3()
                for b in node.bodies:
                    weighted = weighted + b.position * b.mass
                node.com = weighted / node.mass
            return
        total_mass = 0.0
        weighted = Vec3()
        for child in node.children:
            if child is None:
                continue
            self._aggregate(child)
            total_mass += child.mass
            weighted = weighted + child.com * child.mass
        node.mass = total_mass
        node.com = weighted / total_mass if total_mass > 0 else node.center

    def nodes(self) -> List[BHNode]:
        out, frontier = [], [self.root]
        while frontier:
            node = frontier.pop(0)
            out.append(node)
            if not node.is_leaf:
                frontier.extend(c for c in node.children if c is not None)
        return out

    def depth(self) -> int:
        def rec(node: BHNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(rec(c) for c in node.children if c is not None)
        return rec(self.root)

    # -- force walk -------------------------------------------------------------
    def force_on(self, body: Body) -> ForceResult:
        """Barnes-Hut force walk with a visit trace for the timing models."""
        cached = self._force_cache.get(body)
        if cached is None:
            visits: List[WalkEvent] = []
            acc = self._walk(self.root, body, visits)
            cached = self._force_cache[body] = ForceResult(acc, tuple(visits))
        return cached

    def _walk(self, node: BHNode, body: Body, visits: List[WalkEvent]) -> Vec3:
        if node.mass == 0.0:
            return Vec3()
        if node.is_leaf:
            total = Vec3()
            interacted = False
            for other in node.bodies:
                if other.body_id == body.body_id:
                    continue
                interacted = True
                total = total + self._pair_force(body.position, other.position,
                                                 other.mass)
            if interacted:
                visits.append(WalkEvent(node, "leaf", False))
            return total
        # Inner node: Algorithm 2 decides open-vs-approximate.
        threshold = node.size / self.theta
        open_cell = point_distance_below(body.position, node.com, threshold)
        visits.append(WalkEvent(node, "inner", open_cell))
        if not open_cell:
            return self._pair_force(body.position, node.com, node.mass)
        total = Vec3()
        for child in node.children:
            if child is not None:
                total = total + self._walk(child, body, visits)
        return total

    def _pair_force(self, at: Vec3, source: Vec3, mass: float) -> Vec3:
        d = source - at
        dist2 = d.length_squared() + self.softening * self.softening
        inv_dist = 1.0 / math.sqrt(dist2)
        # a = G * m * d / |d|^3
        return d * (self.gravity * mass * inv_dist * inv_dist * inv_dist)

    def warp_walk(self, bodies: Sequence[Body]) -> Tuple[WalkEvent, ...]:
        """One traversal for a whole warp, Burtscher-Pingali style.

        Real CUDA Barnes-Hut kernels keep warps converged by voting: a
        cell is opened if *any* lane needs it opened, and every lane
        executes every visit (predicated off where irrelevant).  This is
        the union traversal the baseline GPU kernel replays — more node
        visits than any single lane needs, but no control divergence,
        which is why N-Body shows high SIMT efficiency in Fig. 1.
        """
        visits: List[WalkEvent] = []
        self._warp_walk(self.root, list(bodies), visits)
        return tuple(visits)

    def _warp_walk(self, node: BHNode, bodies: List[Body],
                   visits: List[WalkEvent]) -> None:
        if node.mass == 0.0:
            return
        if node.is_leaf:
            if node.bodies:
                visits.append(WalkEvent(node, "leaf", False))
            return
        threshold = node.size / self.theta
        open_cell = any(
            point_distance_below(b.position, node.com, threshold)
            for b in bodies
        )
        visits.append(WalkEvent(node, "inner", open_cell))
        if not open_cell:
            return
        for child in node.children:
            if child is not None:
                self._warp_walk(child, bodies, visits)

    def direct_force_on(self, body: Body) -> Vec3:
        """O(n) exact force — the golden reference for accuracy tests."""
        total = Vec3()
        for other in self.bodies:
            if other.body_id == body.body_id:
                continue
            total = total + self._pair_force(body.position, other.position,
                                             other.mass)
        return total
