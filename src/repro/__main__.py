"""Command-line experiment runner: ``python -m repro``.

Examples::

    python -m repro list
    python -m repro run fig12
    python -m repro run fig12 fig13 --scale large --csv-dir results/
    python -m repro run all --scale smoke
"""

import argparse
import pathlib
import sys
import time

from repro.harness import experiments

EXPERIMENTS = {
    "fig01": experiments.fig01_motivation,
    "fig06": experiments.fig06_roofline,
    "fig12": experiments.fig12_speedup,
    "fig13": experiments.fig13_dram,
    "fig14": experiments.fig14_sensitivity,
    "fig15": experiments.fig15_unit_util,
    "fig16": experiments.fig16_lumibench,
    "fig17": experiments.fig17_limit_study,
    "fig18": experiments.fig18_opunits,
    "fig19": experiments.fig19_energy,
    "fig20": experiments.fig20_instructions,
    "nbody_fusion": experiments.nbody_fusion,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures on the behavioral "
                    "TTA/TTA+ simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--scale", default="small",
                     choices=sorted(experiments.SCALES),
                     help="workload scale (default: small)")
    run.add_argument("--csv-dir", type=pathlib.Path, default=None,
                     help="also write each table as CSV into this directory")
    run.add_argument("--plot", action="store_true",
                     help="render ASCII bar charts after each table")
    return parser


DESCRIPTIONS = {
    "fig01": "SIMT efficiency and DRAM bandwidth utilization (motivation)",
    "fig06": "roofline placement of tree-traversal workloads",
    "fig12": "speedups of TTA/TTA+ over the baselines",
    "fig13": "DRAM bandwidth utilization per platform",
    "fig14": "TTA sensitivity: warp buffer size, intersection latency",
    "fig15": "TTA intersection-unit concurrency (avg/peak)",
    "fig16": "LumiBench + WKND_PT on TTA+ vs baseline RTA",
    "fig17": "WKND_PT limit study (perfect RT / perfect memory)",
    "fig18": "TTA+ OP-unit utilization and intersection latency",
    "fig19": "energy normalized to the baseline GPU",
    "fig20": "dynamic instruction breakdown (91% eliminated)",
    "nbody_fusion": "N-Body kernel-fusion optimization (§V-A)",
}


def cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        print(f"{name:14s} {DESCRIPTIONS.get(name, '')}")
    return 0


def cmd_run(names, scale: str, csv_dir, plot: bool = False) -> int:
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        table = EXPERIMENTS[name](scale)
        print(table.format())
        print(f"[{name}: {time.time() - started:.1f}s at scale={scale}]")
        print()
        if plot:
            from repro.harness.plots import auto_plots
            for chart in auto_plots(name, table):
                print(chart)
                print()
        if csv_dir is not None:
            (csv_dir / f"{name}.csv").write_text(table.to_csv())
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    return cmd_run(args.experiments, args.scale, args.csv_dir,
                   plot=getattr(args, "plot", False))


if __name__ == "__main__":
    sys.exit(main())
