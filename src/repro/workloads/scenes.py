"""Procedural triangle scenes and cameras (the LumiBench substitution).

LumiBench [54] ships binary scene assets; what TTA+'s slowdown depends
on is the *traversal behaviour* — BVH depth, leaf density, ray-type mix
— so these generators produce scenes with matched structure:

* ``make_cornell_scene`` — an enclosed box with interior occluders
  (CORNELL-style path tracing: rays always hit, deep secondary rays);
* ``make_soup_scene`` — a large unstructured triangle soup
  (SPONZA-style: wide BVH, midrange depth);
* ``make_shell_scene`` — a dense tessellated blob
  (BUNNY-style: compact, deep BVH);
* ``make_thin_strips_scene`` — long, thin primitives whose AABBs
  overlap badly (SHIP-style: the pathological case SATO [65] fixes for
  shadow rays).

``traverse_any_sato`` implements the SATO surface-area traversal order
for shadow rays, which TTA+'s programmability enables (*SHIP_SH).
"""

import math
import random
from typing import Callable, List

from repro.errors import ConfigurationError
from repro.geometry.intersect import ray_aabb_intersect
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle
from repro.geometry.vec import Vec3, cross
from repro.trees.bvh import BVH, TraversalResult, VisitEvent


# -- scene builders -----------------------------------------------------------------
def _quad(tris: List[Triangle], a: Vec3, b: Vec3, c: Vec3, d: Vec3,
          subdiv: int = 1) -> None:
    """Tessellate quad abcd into 2*subdiv^2 triangles."""
    for i in range(subdiv):
        for j in range(subdiv):
            u0, u1 = i / subdiv, (i + 1) / subdiv
            v0, v1 = j / subdiv, (j + 1) / subdiv

            def lerp(u, v):
                ab = a + (b - a) * u
                dc = d + (c - d) * u
                return ab + (dc - ab) * v

            p00, p10, p01, p11 = lerp(u0, v0), lerp(u1, v0), lerp(u0, v1), \
                lerp(u1, v1)
            tris.append(Triangle(p00, p10, p11, prim_id=len(tris)))
            tris.append(Triangle(p00, p11, p01, prim_id=len(tris)))


def make_cornell_scene(subdiv: int = 4, seed: int = 0) -> List[Triangle]:
    """Enclosed box with two interior blocks (path-tracing friendly)."""
    tris: List[Triangle] = []
    s = 10.0
    corners = {
        "flb": Vec3(0, 0, 0), "frb": Vec3(s, 0, 0),
        "flt": Vec3(0, s, 0), "frt": Vec3(s, s, 0),
        "blb": Vec3(0, 0, s), "brb": Vec3(s, 0, s),
        "blt": Vec3(0, s, s), "brt": Vec3(s, s, s),
    }
    c = corners
    _quad(tris, c["flb"], c["frb"], c["brb"], c["blb"], subdiv)  # floor
    _quad(tris, c["flt"], c["frt"], c["brt"], c["blt"], subdiv)  # ceiling
    _quad(tris, c["blb"], c["brb"], c["brt"], c["blt"], subdiv)  # back
    _quad(tris, c["flb"], c["blb"], c["blt"], c["flt"], subdiv)  # left
    _quad(tris, c["frb"], c["brb"], c["brt"], c["frt"], subdiv)  # right
    rng = random.Random(seed)
    for _ in range(2):  # interior blocks
        base = Vec3(rng.uniform(1, 7), 0, rng.uniform(3, 7))
        w, h, d = rng.uniform(1.5, 3), rng.uniform(2, 5), rng.uniform(1.5, 3)
        p = [base, base + Vec3(w, 0, 0), base + Vec3(w, 0, d),
             base + Vec3(0, 0, d)]
        q = [v + Vec3(0, h, 0) for v in p]
        _quad(tris, p[0], p[1], p[2], p[3], 1)
        _quad(tris, q[0], q[1], q[2], q[3], 1)
        for i in range(4):
            j = (i + 1) % 4
            _quad(tris, p[i], p[j], q[j], q[i], 1)
    return tris


def make_soup_scene(n_triangles: int = 600, seed: int = 1,
                    span: float = 20.0) -> List[Triangle]:
    """Unstructured triangle soup filling a volume (SPONZA-like)."""
    rng = random.Random(seed)
    tris: List[Triangle] = []
    for i in range(n_triangles):
        base = Vec3(rng.uniform(-span, span), rng.uniform(-span, span),
                    rng.uniform(-span, span))
        e1 = Vec3(rng.gauss(0, 1), rng.gauss(0, 1), rng.gauss(0, 1)) * 1.5
        e2 = Vec3(rng.gauss(0, 1), rng.gauss(0, 1), rng.gauss(0, 1)) * 1.5
        tris.append(Triangle(base, base + e1, base + e2, prim_id=i))
    return tris


def make_shell_scene(rings: int = 14, seed: int = 2) -> List[Triangle]:
    """A tessellated, perturbed sphere shell (BUNNY-like blob)."""
    rng = random.Random(seed)
    tris: List[Triangle] = []

    def vert(i, j):
        theta = math.pi * i / rings
        phi = 2 * math.pi * j / (2 * rings)
        r = 5.0 * (1.0 + 0.15 * math.sin(3 * theta) * math.cos(4 * phi))
        return Vec3(r * math.sin(theta) * math.cos(phi),
                    r * math.cos(theta),
                    r * math.sin(theta) * math.sin(phi))

    for i in range(rings):
        for j in range(2 * rings):
            a, b = vert(i, j), vert(i + 1, j)
            c, d = vert(i + 1, j + 1), vert(i, j + 1)
            tris.append(Triangle(a, b, c, prim_id=len(tris)))
            tris.append(Triangle(a, c, d, prim_id=len(tris)))
    return tris


def make_thin_strips_scene(n_strips: int = 250, seed: int = 3,
                           span: float = 20.0) -> List[Triangle]:
    """Long thin strips (SHIP rigging-like, bad for AABBs).

    The scene has two layers: a "deck" of strips around y in [-span, 0]
    that the camera sees, and a dense "rigging" canopy of near-horizontal
    strips at y in [6, 12] between the deck and the light.  Shadow rays
    from deck hits toward an overhead light are therefore usually
    occluded by some rigging strip — the situation where the SATO
    traversal order [65] pays off, because visiting the child more likely
    to contain an occluder first lets the any-hit ray terminate early.
    """
    rng = random.Random(seed)
    tris: List[Triangle] = []

    def strip(base: Vec3, direction: Vec3, thickness: float = 0.08) -> None:
        width = Vec3(rng.gauss(0, 1), rng.gauss(0, 1), rng.gauss(0, 1))
        width = width.normalized() * thickness
        tris.append(Triangle(base, base + direction, base + width,
                             prim_id=len(tris)))
        tris.append(Triangle(base + direction, base + direction + width,
                             base + width, prim_id=len(tris)))

    # A solid deck below the rigging so primary rays hit something and
    # spawn shadow rays toward the light.
    _quad(tris, Vec3(-span, 0, -span), Vec3(span, 0, -span),
          Vec3(span, 0, span), Vec3(-span, 0, span), subdiv=6)
    n_deck = n_strips // 2
    for _ in range(n_deck):
        base = Vec3(rng.uniform(-span, span), rng.uniform(0.2, 4.0),
                    rng.uniform(-span, span))
        direction = Vec3(rng.gauss(0, 1), rng.gauss(0, 0.3), rng.gauss(0, 1))
        if direction.length_squared() < 1e-9:
            direction = Vec3(1, 0, 1)
        strip(base, direction.normalized() * rng.uniform(10, 25))
    # Rigging canopy: long sail/spar strips wide enough to occlude.
    for _ in range(n_strips - n_deck):
        base = Vec3(rng.uniform(-span, span), rng.uniform(6, 12),
                    rng.uniform(-span, span))
        direction = Vec3(rng.gauss(0, 1), rng.gauss(0, 0.1), rng.gauss(0, 1))
        if direction.length_squared() < 1e-9:
            direction = Vec3(1, 0, -1)
        strip(base, direction.normalized() * rng.uniform(15, 30),
              thickness=rng.uniform(0.8, 2.5))
    return tris


# -- camera ---------------------------------------------------------------------
class Camera:
    """Pinhole camera generating one primary ray per pixel."""

    def __init__(self, position: Vec3, look_at: Vec3, fov_deg: float = 60.0):
        self.position = position
        forward = (look_at - position).normalized()
        world_up = Vec3(0, 1, 0)
        if abs(forward.y) > 0.99:
            world_up = Vec3(1, 0, 0)
        right = cross(forward, world_up).normalized()
        up = cross(right, forward)
        self.forward, self.right, self.up = forward, right, up
        self.half_extent = math.tan(math.radians(fov_deg) / 2)

    def rays(self, width: int, height: int) -> List[Ray]:
        if width < 1 or height < 1:
            raise ConfigurationError("image must be at least 1x1")
        out: List[Ray] = []
        for y in range(height):
            for x in range(width):
                u = (2 * (x + 0.5) / width - 1) * self.half_extent
                v = (1 - 2 * (y + 0.5) / height) * self.half_extent
                direction = (self.forward + self.right * u + self.up * v)
                out.append(Ray(self.position, direction.normalized()))
        return out


# -- SATO traversal order (enabled by TTA+ programmability, *SHIP_SH) -----------
def traverse_any_sato(bvh: BVH, ray: Ray,
                      intersector: Callable) -> TraversalResult:
    """Any-hit traversal visiting the larger-surface-area child first.

    For shadow rays through scenes of long thin primitives, descending
    into the child more likely to contain *some* occluder first lets the
    traversal terminate far sooner [65].  The baseline RTA's traversal
    order is fixed; TTA+'s programmable dest tables can encode this.
    """
    visits: List[VisitEvent] = []
    all_hits: List[int] = []
    stack = [bvh.root]
    closest_t, closest_prim = math.inf, None
    while stack:
        node = stack.pop()
        if node.is_leaf:
            hit_any = False
            for prim in bvh.leaf_prims(node):
                hit = intersector(ray, prim)
                if hit is not None:
                    hit_any = True
                    all_hits.append(prim.prim_id)
                    if hit.t < closest_t:
                        closest_t, closest_prim = hit.t, prim.prim_id
            visits.append(VisitEvent(node, "leaf", node.prim_count, hit_any))
            if hit_any:
                break
        else:
            span = ray_aabb_intersect(ray, node.bounds)
            visits.append(VisitEvent(node, "inner", 1, span is not None))
            if span is not None:
                # Ordered descent: visit the child the ray enters first,
                # weighting by surface area on ties — the SATO-style
                # occluder-likelihood order a programmable dest table can
                # encode but a fixed-function traversal cannot.
                def entry(child):
                    child_span = ray_aabb_intersect(ray, child.bounds)
                    if child_span is None:
                        return (1e30, 0.0)
                    return (child_span[0], -child.bounds.surface_area())

                children = sorted((node.left, node.right), key=entry,
                                  reverse=True)
                # Stack: push the later-entered child first so the
                # earlier-entered one pops first.
                stack.extend(children)
    return TraversalResult(closest_t, closest_prim, tuple(all_hits),
                           tuple(visits))
