"""Unit tests for the baseline RTA / TTA accelerator engine."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import GPU, AccelCall, GPUConfig
from repro.rta import FixedFunctionBackend, RTACore, Step, TraversalJob
from repro.rta.rta import make_rta_factory

CFG = GPUConfig(n_sms=1, max_warps_per_sm=4)


def accel_kernel_factory(jobs_by_tid):
    def kernel(tid, args):
        result = yield AccelCall(jobs_by_tid[tid], tag=1)
        args[tid] = result
    return kernel


def run_jobs(jobs, cfg=CFG, tta=False, n_threads=None, latency_overrides=None):
    n = n_threads if n_threads is not None else len(jobs)
    out = {}
    gpu = GPU(cfg, accelerator_factory=make_rta_factory(
        tta=tta, latency_overrides=latency_overrides))
    stats = gpu.launch(accel_kernel_factory(jobs), n, args=out)
    return stats, out


def simple_job(qid, n_steps=3, op="box", base_addr=0x10000, result="ok"):
    steps = [Step(base_addr + i * 64, 64, op) for i in range(n_steps)]
    return TraversalJob(qid, steps, result)


class TestRTACore:
    def test_results_returned_in_order(self):
        jobs = [simple_job(i, result=f"r{i}") for i in range(32)]
        stats, out = run_jobs(jobs)
        assert out == {i: f"r{i}" for i in range(32)}

    def test_accel_stats_collected(self):
        jobs = [simple_job(i) for i in range(32)]
        stats, _ = run_jobs(jobs)
        acc = stats.accel_stats
        assert acc["jobs_completed"] == 32
        assert acc["node_fetches"] + acc["node_fetches_coalesced"] == 32 * 3
        assert acc["box_ops"] == 32 * 3

    def test_same_node_fetches_coalesce(self):
        # Every ray visits the same 3 nodes: one real fetch each.
        jobs = [simple_job(i) for i in range(32)]
        stats, _ = run_jobs(jobs)
        assert stats.accel_stats["node_fetches_coalesced"] > 0

    def test_tri_latency_longer_than_box(self):
        box_jobs = [simple_job(i, op="box") for i in range(32)]
        tri_jobs = [simple_job(i, op="tri") for i in range(32)]
        box_stats, _ = run_jobs(box_jobs)
        tri_stats, _ = run_jobs(tri_jobs)
        assert (tri_stats.accel_stats["traversal_latency_mean"]
                > box_stats.accel_stats["traversal_latency_mean"])

    def test_warp_buffer_limits_concurrency(self):
        cfg = CFG.with_overrides(warp_buffer_warps=1)
        jobs = [simple_job(i, n_steps=6) for i in range(128)]
        small_stats, _ = run_jobs(jobs, cfg=cfg)
        big_stats, _ = run_jobs(jobs, cfg=CFG.with_overrides(
            warp_buffer_warps=8))
        assert big_stats.cycles < small_stats.cycles
        assert small_stats.accel_stats["warp_buffer_occupancy_peak"] <= 32

    def test_unsupported_op_raises(self):
        jobs = [simple_job(0, op="query_key")]
        with pytest.raises(ConfigurationError):
            run_jobs(jobs, tta=False)

    def test_tta_supports_query_key_and_point_dist(self):
        jobs = [simple_job(0, op="query_key"),
                simple_job(1, op="point_dist")]
        stats, out = run_jobs(jobs, tta=True)
        assert out == {0: "ok", 1: "ok"}
        assert stats.accel_stats["query_key_ops"] == 3
        assert stats.accel_stats["point_dist_ops"] == 3

    def test_latency_override_slows_traversal(self):
        jobs = [simple_job(i, op="query_key") for i in range(32)]
        fast, _ = run_jobs(jobs, tta=True,
                           latency_overrides={"query_key": 3})
        slow, _ = run_jobs(jobs, tta=True,
                           latency_overrides={"query_key": 130})
        assert slow.accel_stats["traversal_latency_mean"] > \
            fast.accel_stats["traversal_latency_mean"]

    def test_empty_submission_rejected(self):
        def kernel(tid, args):
            yield AccelCall(None, tag=1)

        gpu = GPU(CFG, accelerator_factory=make_rta_factory())
        # RTACore.submit receives [None]; a None job fails in the engine.
        with pytest.raises(Exception):
            gpu.launch(kernel, 0)

    def test_leaf_count_issues_multiple_tests(self):
        job = TraversalJob(0, [Step(0x100, 64, "tri", count=4)], "x")
        stats, _ = run_jobs([job])
        assert stats.accel_stats["tri_ops"] == 4

    def test_shader_step_bounces_to_sm(self):
        job = TraversalJob(
            0, [Step(0x100, 64, "box"),
                Step(0x140, 64, "shader", count=2, shader_insts=30)], "x")
        stats, _ = run_jobs([job])
        assert stats.accel_stats["shader_bounces"] == 2
        assert stats.accel_stats["shader_cycles"] > 60
        # Shader warps are batched: the ray is charged its per-lane share.
        assert stats.warp_instructions.get("shader") == pytest.approx(60 / 32)

    def test_no_fetch_step(self):
        job = TraversalJob(0, [Step(-1, 0, "xform"),
                               Step(0x100, 64, "box")], "x")
        stats, _ = run_jobs([job])
        assert stats.accel_stats["xform_ops"] == 1
        assert stats.accel_stats["node_fetches"] == 1

    def test_occupancy_tracked(self):
        jobs = [simple_job(i, n_steps=8) for i in range(64)]
        stats, _ = run_jobs(jobs)
        assert stats.accel_stats["box_occupancy_peak"] >= 1
        assert stats.accel_stats["box_latency_mean"] >= 13


class TestBackendDirect:
    def test_pool_round_robin(self):
        import repro.sim as sim_mod
        sim = sim_mod.Simulator()
        backend = FixedFunctionBackend(sim, CFG)
        gen = backend.execute(0, "box", 8)
        delays = list(gen)
        # 8 ops over 4 sets: 2 per unit, last completes at 14.
        assert delays == [14]

    def test_unknown_op(self):
        import repro.sim as sim_mod
        backend = FixedFunctionBackend(sim_mod.Simulator(), CFG)
        with pytest.raises(ConfigurationError):
            list(backend.execute(0, "uop:anything", 1))


class TestJobHelpers:
    def test_op_counts(self):
        job = TraversalJob(0, [Step(0, 64, "box"), Step(64, 64, "box"),
                               Step(128, 64, "tri", count=3)], None)
        assert job.op_counts() == {"box": 2, "tri": 3}
        assert job.node_fetches == 3
        assert job.warp_buffer_reads == 6
