"""Fig. 17 — limit study: perfect RT fetches / perfect memory on WKND_PT."""

from repro.harness import experiments


def test_fig17_limit_study(benchmark, scale, save_table):
    table = benchmark.pedantic(
        lambda: experiments.fig17_limit_study(scale), rounds=1, iterations=1)
    save_table("fig17_limit_study", table)
    rows = {r[0]: r for r in table.rows}
    base_naive, base_opt = rows["TTA+"][1], rows["TTA+"][2]
    # Architectural improvements compound with the TTA+ optimization:
    # both perfect-RT and perfect-memory lift both configurations.
    for cfg in ("Perf. RT (zero-latency node fetch)",
                "Perf. Mem (zero-latency memory)"):
        assert rows[cfg][1] > base_naive, f"{cfg} did not help WKND_PT"
        assert rows[cfg][2] > base_opt, f"{cfg} did not help *WKND_PT"
        # The optimization stays beneficial under each limit (orthogonal).
        assert rows[cfg][2] > rows[cfg][1]
