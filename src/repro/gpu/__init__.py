"""Behavioral SIMT GPU model (the paper's baseline general-purpose cores).

The model reproduces the three performance effects the paper's argument
rests on:

* dynamic-instruction cost — every traversal step spends tens of issued
  instructions on the in-order, one-instruction-per-cycle SM front end;
* SIMT divergence — threads of a warp at different program points
  serialize, measured as SIMT efficiency (Fig. 1);
* limited memory-level parallelism — each warp blocks on its dependent
  node load, capping DRAM utilization (Figs. 1/13).
"""

from repro.gpu.config import GPUConfig
from repro.gpu.device import GPU, KernelStats
from repro.gpu.isa import AccelCall, Compute, Load

__all__ = [
    "GPUConfig",
    "GPU",
    "KernelStats",
    "Compute",
    "Load",
    "AccelCall",
]
