#!/usr/bin/env python3
"""Programming TTA+ with a custom intersection test (interval stabbing).

The point of TTA+ is that *new* tree algorithms run without new
silicon.  This example builds one the paper never evaluated: an
interval tree queried with stabbing queries ("which stored intervals
contain point x?") — the classic database/temporal-index operation.

The inner test (does the query point fall below this subtree's max
endpoint?) and the leaf test (does the interval contain the point?) are
written as `.asm` µop programs (the Listing 1 ``ConfigI("...asm")``
path), registered, and executed by the TTA+ backend.

Run:  python examples/custom_intersection.py
"""

import random
from typing import List, NamedTuple, Tuple

from repro.core.api import TTAPipeline
from repro.core.ttaplus.asm import assemble
from repro.core.ttaplus.programs import register_program
from repro.core.ttaplus import make_ttaplus_factory
from repro.gpu import GPU, AccelCall, Compute, GPUConfig
from repro.harness.runner import scaled_config_for
from repro.memsys.memory_image import AddressSpace
from repro.rta.traversal import Step, TraversalJob

# --- an interval tree (augmented, sorted by start, max-endpoint annotated) ---


class Interval(NamedTuple):
    lo: float
    hi: float
    interval_id: int


class IntervalNode:
    __slots__ = ("interval", "max_hi", "left", "right", "address")

    def __init__(self, interval):
        self.interval = interval
        self.max_hi = interval.hi
        self.left = None
        self.right = None
        self.address = -1

    @property
    def children(self):  # for TreeImage-style layout helpers
        return [c for c in (self.left, self.right) if c is not None]


def build_interval_tree(intervals: List[Interval]) -> IntervalNode:
    intervals = sorted(intervals, key=lambda iv: iv.lo)

    def rec(items):
        if not items:
            return None
        mid = len(items) // 2
        node = IntervalNode(items[mid])
        node.left = rec(items[:mid])
        node.right = rec(items[mid + 1:])
        node.max_hi = max(
            [node.interval.hi]
            + [c.max_hi for c in (node.left, node.right) if c]
        )
        return node

    return rec(intervals)


def stab_query(root: IntervalNode, x: float):
    """All intervals containing x, plus the visit trace."""
    hits, visits = [], []
    stack = [root]
    while stack:
        node = stack.pop()
        visits.append(node)
        if node.interval.lo <= x <= node.interval.hi:
            hits.append(node.interval.interval_id)
        if node.left is not None and node.left.max_hi >= x:
            stack.append(node.left)
        if node.right is not None and node.right.interval.lo <= x:
            stack.append(node.right)
    return sorted(hits), visits


def all_nodes(root: IntervalNode) -> List[IntervalNode]:
    out, frontier = [], [root]
    while frontier:
        node = frontier.pop(0)
        out.append(node)
        frontier.extend(node.children)
    return out


# --- the custom µop programs (what ConfigI/ConfigL would load) -----------------
STAB_INNER_ASM = """
; interval-stab inner test: prune by max endpoint and start key
SUB   d1, maxHi, x        ; maxHi - x
SUB   d2, x, lo           ; x - lo
CMP   goLeft,  d1, zero   ; maxHi >= x ?
CMP   goRight, d2, zero   ; x >= lo ?
AND   visit, goLeft, goRight
TERM  visit
"""

STAB_LEAF_ASM = """
; interval containment: lo <= x <= hi
SUB  a, x, lo
SUB  b, hi, x
CMP  cA, a, zero
CMP  cB, b, zero
AND  hit, cA, cB
"""


def main() -> None:
    rng = random.Random(0)
    intervals = []
    for i in range(4096):
        lo = rng.uniform(0, 1000)
        intervals.append(Interval(lo, lo + rng.uniform(0.5, 25), i))
    root = build_interval_tree(intervals)
    queries = [rng.uniform(0, 1000) for _ in range(2048)]

    # Lay the tree out in memory.
    space = AddressSpace()
    space.place_tree(all_nodes(root))

    # Assemble + register the custom tests, configure a TTA+ pipeline.
    inner = assemble("stab_inner", STAB_INNER_ASM)
    leaf = assemble("stab_leaf", STAB_LEAF_ASM)
    register_program(inner, replace=True)
    register_program(leaf, replace=True)
    pipeline = TTAPipeline(flavor="ttaplus")
    pipeline.decode_r([4, 4, 4, 4])            # query x + scratch
    pipeline.decode_i([4, 4, 4, 4, 4, 4])      # lo, hi, maxHi, children...
    pipeline.decode_l([4, 4, 4, 4, 4, 4])
    pipeline.config_i(inner)
    pipeline.config_l(leaf)
    print(f"registered µop programs: inner={len(inner)} µops "
          f"(terminate@pc{inner.terminate_pc}), leaf={len(leaf)} µops")

    # Build jobs from functional traces + a baseline kernel for contrast.
    jobs, golden = [], []
    for qid, x in enumerate(queries):
        hits, visits = stab_query(root, x)
        golden.append(hits)
        steps = [Step(v.address, 64,
                      "uop:stab_leaf" if not v.children else "uop:stab_inner")
                 for v in visits]
        jobs.append(TraversalJob(qid, steps, hits))

    def baseline_kernel(tid, args):
        _hits, visits = stab_query(root, queries[tid])
        for i, v in enumerate(visits):
            from repro.gpu.isa import Load
            yield Compute(8, tag=10, kind="control")
            yield Load(v.address, 64, tag=11)
            yield Compute(10, tag=12, kind="alu")
        args[tid] = _hits

    def accel_kernel(tid, args):
        hits = yield AccelCall(jobs[tid], tag=1)
        args[tid] = hits

    cfg = scaled_config_for(len(all_nodes(root)) * 64)
    out_base, out_accel = {}, {}
    base = GPU(cfg).launch(baseline_kernel, len(queries), args=out_base)
    gpu = GPU(cfg, accelerator_factory=pipeline.accelerator_factory())
    accel = gpu.launch(accel_kernel, len(queries), args=out_accel)

    assert out_base == out_accel == {i: h for i, h in enumerate(golden)}
    mean_hits = sum(len(h) for h in golden) / len(golden)
    print(f"interval tree: {len(intervals)} intervals, "
          f"{len(queries)} stabbing queries, ~{mean_hits:.1f} hits/query")
    print(f"baseline GPU : {base.cycles:9.0f} cycles "
          f"(SIMT eff {base.simt_efficiency:.2f})")
    print(f"custom TTA+  : {accel.cycles:9.0f} cycles "
          f"({base.cycles / accel.cycles:.2f}x) — "
          "a traversal the paper never shipped silicon for")


if __name__ == "__main__":
    main()
