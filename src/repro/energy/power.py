"""Power and per-event energy constants.

Anchored on the paper's synthesized numbers: the baseline Ray-Box unit
draws 259.4 mW active and the TTA-modified one 261.1 mW (§V-C1).  Units
without a published figure are scaled from their Table IV areas at the
Ray-Box unit's power density — the standard constant-density estimate
for same-process synthesis.  Warp-buffer access energy follows the
CACTI7 methodology (a small SRAM read/write at 45nm); core and DRAM
energies follow AccelWattch-class per-event costs.
"""

from repro.energy.area import (
    BASELINE_AREAS_UM2,
    SQRT_AREA_UM2,
    TTAPLUS_AREAS_UM2,
)

CLOCK_GHZ = 1.365  # Table II compute clock

#: mW per µm², from the synthesized Ray-Box unit.
_DENSITY_MW_PER_UM2 = 259.4 / BASELINE_AREAS_UM2["ray_box"]


def _scaled(area_um2: float) -> float:
    return area_um2 * _DENSITY_MW_PER_UM2


#: Active power of each timing-model unit, in mW.
UNIT_POWER_MW = {
    # Fixed-function pipelines (baseline RTA / TTA).
    "box": 259.4,
    "query_key": 261.1,                       # §V-C1: +0.7%
    "tri": _scaled(BASELINE_AREAS_UM2["ray_tri"]),
    "point_dist": _scaled(BASELINE_AREAS_UM2["ray_tri"]),
    "xform": _scaled(TTAPLUS_AREAS_UM2["cross"]),
    # TTA+ OP units (scaled from Table IV areas).
    "vec3_addsub": _scaled(TTAPLUS_AREAS_UM2["vec3_addsub"]),
    "mul": _scaled(TTAPLUS_AREAS_UM2["mul"]),
    "rcp": _scaled(TTAPLUS_AREAS_UM2["rcp_x3"] / 3.0),
    "cross": _scaled(TTAPLUS_AREAS_UM2["cross"]),
    "dot": _scaled(TTAPLUS_AREAS_UM2["dot"]),
    "vec3_cmp": _scaled(TTAPLUS_AREAS_UM2["minmax"]),
    "minmax": _scaled(TTAPLUS_AREAS_UM2["minmax"]),
    "maxmin": _scaled(TTAPLUS_AREAS_UM2["maxmin"]),
    "logical": _scaled(TTAPLUS_AREAS_UM2["minmax"]),
    "sqrt": _scaled(SQRT_AREA_UM2),
    "rxform": _scaled(TTAPLUS_AREAS_UM2["cross"]),
}


def unit_energy_per_busy_cycle_nj(unit: str) -> float:
    """nJ per cycle a unit spends issuing (P * t at the core clock)."""
    return UNIT_POWER_MW[unit] * 1e-3 / (CLOCK_GHZ * 1e9) * 1e9


#: CACTI-class warp buffer SRAM access energies (64B entry, 45nm), nJ.
WARP_BUFFER_READ_NJ = 0.015
WARP_BUFFER_WRITE_NJ = 0.022

#: AccelWattch-class per-warp-instruction dynamic energy on the SIMT
#: front end + execution units, nJ.
CORE_DYN_NJ_PER_WARP_INST = 1.5

#: Static/constant power per SM, converted to nJ per cycle.
CORE_STATIC_NJ_PER_SM_CYCLE = 0.45

#: DRAM access energy, nJ per byte moved.
DRAM_NJ_PER_BYTE = 0.02

#: TTA+ crossbar payload transfer (120B across the 16x16 switch), nJ.
ICNT_NJ_PER_TRANSFER = 0.012
