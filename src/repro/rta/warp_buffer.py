"""The RTA warp buffer: admission control plus access-energy accounting.

The warp buffer holds per-ray state (traversal stack, origin/direction
or, in TTA, the programmer-defined ray layout of Fig. 7).  Its capacity
— ``warp_buffer_warps x 32`` rays — bounds how many traversals are in
flight, which Fig. 14 shows is the dominant TTA performance knob.
"""

from typing import List

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.stats import OccupancyTracker


class WarpBuffer:
    """Counting-semaphore admission over ray slots."""

    def __init__(self, sim: Simulator, warps: int, warp_size: int = 32):
        if warps < 1:
            raise ConfigurationError("warp buffer needs at least one warp")
        self.sim = sim
        self.capacity = warps * warp_size
        self._in_use = 0
        self._waiters: List = []
        # Relaxed: the batched driver enters/vacates at analytic float
        # times, which may interleave out of order within one engine
        # cycle (same as the backend's pipeline-chain trackers).
        self.occupancy = OccupancyTracker(strict=False)
        self.reads = 0
        self.writes = 0

    @property
    def free(self) -> int:
        return self.capacity - self._in_use

    def acquire(self):
        """Process helper: ``yield from buffer.acquire()`` blocks until a
        ray slot is available."""
        while self._in_use >= self.capacity:
            signal = self.sim.signal()
            self._waiters.append(signal)
            yield signal
        self._in_use += 1
        self.occupancy.enter(self.sim.now)

    def release(self) -> None:
        self._in_use -= 1
        self.occupancy.exit(self.sim.now)
        if self._waiters:
            self._waiters.pop(0).fire()

    # -- non-blocking interface (batched job driver) -----------------------
    def try_admit(self, now) -> bool:
        """Claim a ray slot if one is free; the caller queues otherwise.

        The batched driver keeps its own FIFO of waiting jobs instead of
        parking one Signal-suspended process per ray, so admission costs
        a counter bump rather than an event-queue round trip.
        """
        if self._in_use >= self.capacity:
            return False
        self._in_use += 1
        self.occupancy.enter(now)
        return True

    def vacate(self, now) -> None:
        """Release a slot claimed with :meth:`try_admit` (no signals)."""
        self._in_use -= 1
        self.occupancy.exit(now)

    def record_access(self, reads: int = 0, writes: int = 0) -> None:
        self.reads += reads
        self.writes += writes

    def guard_state(self) -> dict:
        """Occupancy for diagnostic bundles and the drain invariant: a
        non-zero ``warp_buffer_in_use`` after all jobs completed means a
        ray slot leaked."""
        return {
            "warp_buffer_in_use": self._in_use,
            "warp_buffer_capacity": self.capacity,
            "warp_buffer_waiters": len(self._waiters),
        }

    def snapshot(self, end: float) -> dict:
        return {
            "warp_buffer_reads": self.reads,
            "warp_buffer_writes": self.writes,
            "warp_buffer_occupancy_avg": self.occupancy.average(end),
            "warp_buffer_occupancy_peak": self.occupancy.peak,
        }
