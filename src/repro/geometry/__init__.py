"""Geometric primitives and intersection tests.

These are the *functional* counterparts of the RTA's fixed-function
units: the slab Ray-Box test, the Möller-Trumbore Ray-Triangle test and
the quadratic Ray-Sphere test, plus the Query-Key and Point-to-Point
operations that TTA adds (Algorithms 1 and 2 in the paper).
"""

from repro.geometry.vec import Vec3, cross, dot
from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle, ray_triangle_intersect
from repro.geometry.sphere import Sphere, ray_sphere_intersect
from repro.geometry.intersect import (
    point_distance_below,
    ray_aabb_intersect,
)
from repro.geometry.batch import (
    aabbs_soa,
    contains_points_batch,
    point_distance_below_batch,
    point_distance_squared_batch,
    points_soa,
    ray_aabb_slab_batch,
    ray_sphere_batch,
    ray_sphere_roots_batch,
    ray_triangle_batch,
    ray_triangle_candidates_batch,
    rays_soa,
    spheres_soa,
    triangles_soa,
)

__all__ = [
    "Vec3",
    "dot",
    "cross",
    "AABB",
    "Ray",
    "Triangle",
    "Sphere",
    "ray_aabb_intersect",
    "ray_triangle_intersect",
    "ray_sphere_intersect",
    "point_distance_below",
    "aabbs_soa",
    "contains_points_batch",
    "point_distance_below_batch",
    "point_distance_squared_batch",
    "points_soa",
    "ray_aabb_slab_batch",
    "ray_sphere_batch",
    "ray_sphere_roots_batch",
    "ray_triangle_batch",
    "ray_triangle_candidates_batch",
    "rays_soa",
    "spheres_soa",
    "triangles_soa",
]
