"""Extension: B+Tree range scans — where the offload's benefit dilutes.

TTA accelerates the descent to the first qualifying leaf; the leaf-chain
scan itself streams on the SIMT cores.  Sweeping the range width shows
the speedup collapsing toward 1x as the scan dominates — a negative
control documenting the boundary of the paper's claim.
"""

import random

from repro.gpu import GPU
from repro.harness.results import Table
from repro.harness.runner import scaled_config_for
from repro.kernels.range_scan import (
    RangeScanKernelArgs,
    build_range_scan_jobs,
    range_scan_accel_kernel,
    range_scan_baseline_kernel,
)
from repro.memsys.memory_image import AddressSpace
from repro.rta.rta import make_rta_factory
from repro.trees import BPlusTree

SIZES = {"smoke": (2048, 128), "small": (16384, 512), "large": (65536, 1024)}


def test_ext_rangescan(benchmark, scale, save_table):
    n_keys, n_ranges = SIZES.get(scale, SIZES["small"])

    def build():
        rng = random.Random(11)
        keys = sorted(rng.sample(range(n_keys * 4), n_keys))
        tree = BPlusTree.bulk_load(keys, seed=11)
        space = AddressSpace()
        space.place_tree(tree.nodes())
        cfg = scaled_config_for(len(tree.nodes()) * 64)
        table = Table(
            "Extension — B+Tree range scans (descent offloaded to TTA)",
            ["range_width", "avg_results", "gpu_cycles", "tta_speedup"],
        )
        for width in (8, 128, 2048):
            ranges = []
            for _ in range(n_ranges):
                lo = rng.randrange(n_keys * 4)
                ranges.append((lo, lo + width))
            avg = sum(len(tree.range_scan(lo, hi))
                      for lo, hi in ranges[:32]) / 32

            def args():
                return RangeScanKernelArgs(
                    tree=tree, ranges=ranges,
                    query_buf=space.alloc(8 * n_ranges, align=128),
                    result_buf=space.alloc(4 * n_ranges, align=128))

            base_args = args()
            base = GPU(cfg).launch(range_scan_baseline_kernel, n_ranges,
                                   args=base_args)
            accel_args = args()
            accel_args.jobs = build_range_scan_jobs(tree, ranges)
            accel = GPU(cfg, accelerator_factory=make_rta_factory(
                tta=True)).launch(range_scan_accel_kernel, n_ranges,
                                  args=accel_args)
            table.add_row(width, avg, base.cycles,
                          base.cycles / accel.cycles)
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("ext_rangescan", table)
    speedups = table.column("tta_speedup")
    # The negative-control finding: because the scan re-touches the
    # leaves on the cores, offloading the descent hovers near parity for
    # narrow ranges and dilutes to parity for wide ones — never the
    # multi-x gains of point queries.
    assert all(0.7 < s < 1.6 for s in speedups), speedups
    assert speedups[-1] <= speedups[0] + 0.05
