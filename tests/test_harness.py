"""Tests for the experiment harness (tables, runners, experiments)."""

import pytest

from repro.harness.results import Table, geomean
from repro.harness.runner import scaled_config_for
from repro.errors import ConfigurationError


class TestTable:
    def test_format_alignment_and_title(self):
        t = Table("My Results", ["name", "value"])
        t.add_row("alpha", 1.2345)
        t.add_row("beta", 10000.0)
        text = t.format()
        assert text.startswith("My Results\n==========")
        assert "alpha" in text and "10,000" in text

    def test_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_csv_round_trip(self):
        t = Table("t", ["a", "b"])
        t.add_row("x", 1)
        t.add_row("y", 2)
        lines = t.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1:] == ["x,1", "y,2"]

    def test_csv_and_json_round_trip_floats_exactly(self):
        # Export paths must not inherit format()'s lossy %.3g display.
        import csv as csv_mod
        import io
        import json
        value = 1.0 / 3.0
        t = Table("t", ["name", "value", "nan"])
        t.add_row("x", value, float("nan"))
        row = next(iter(csv_mod.reader(io.StringIO(t.to_csv().splitlines()[1]))))
        assert float(row[1]) == value
        data = json.loads(t.to_json())
        assert data["rows"][0][1] == value
        assert data["rows"][0][2] != data["rows"][0][2]  # NaN survives

    def test_column_extraction(self):
        t = Table("t", ["a", "b"])
        t.add_row("x", 1)
        t.add_row("y", 2)
        assert t.column("b") == [1, 2]
        with pytest.raises(ValueError):
            t.column("c")


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3]) == pytest.approx(3.0)

    def test_nonpositive_dropped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geomean([2, 8, 0, -1]) == pytest.approx(4.0)
        assert geomean([]) == 0.0  # empty input is not a drop: no warning

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            geomean([2, 8, 0], strict=True)
        assert geomean([2, 8], strict=True) == pytest.approx(4.0)


class TestScaledConfig:
    def test_caches_scale_with_data(self):
        small = scaled_config_for(64 * 1024)
        large = scaled_config_for(16 * 1024 * 1024)
        assert small.l2_size <= large.l2_size
        assert small.l1_size <= large.l1_size

    def test_never_exceeds_table2(self):
        cfg = scaled_config_for(10**9)
        assert cfg.l2_size <= 3 * 1024 * 1024
        assert cfg.l1_size <= 64 * 1024

    def test_valid_geometry(self):
        for size in (1, 10_000, 1_000_000, 100_000_000):
            cfg = scaled_config_for(size)
            assert cfg.l2_size % (cfg.l2_assoc * cfg.line_size) == 0
            assert cfg.l1_size % cfg.line_size == 0

    def test_bad_input(self):
        with pytest.raises(ConfigurationError):
            scaled_config_for(0)


class TestExperimentsSmoke:
    """Smoke-scale sanity for the table-producing experiment functions
    not already covered by the benchmark suite's asserts."""

    def test_params_scale_selection(self):
        from repro.harness import experiments
        assert experiments.params("smoke")["lumi_res"] == 8
        with pytest.raises(KeyError):
            experiments.params("galactic")

    def test_fig14_shapes(self):
        from repro.harness import experiments
        experiments.clear_cache()
        table = experiments.fig14_sensitivity("smoke")
        rows = [r for r in table.rows if r[0] == "btree"]
        assert {r[1] for r in rows} == {"warp_buffer", "isect_latency"}
        experiments.clear_cache()

    def test_fig20_reduction(self):
        from repro.harness import experiments
        experiments.clear_cache()
        table = experiments.fig20_instructions("smoke")
        reduction = [r for r in table.rows
                     if r[0] == "mean reduction (tta)"][0][7]
        assert reduction > 0.8
        experiments.clear_cache()
